"""Two-tier schedule caching for the serving cluster.

"Cached Operator Reordering" (PAPERS.md) argues the schedule cache
should be a *shared* resource; a fleet of replicas makes that concrete
with two tiers:

* **L1** — a replica-local in-memory memo.  Hits are free and private;
  the whole point of the hash-affinity routing policy is to maximise
  them by sending repeat graphs back to the replica that already
  holds their schedule.
* **L2** — one shared store for the fleet.  A replica that L1-misses
  probes L2 before recomputing Algorithm 1, so a graph first seen by
  replica 0 is still a (slower) hit when round-robin later sends it to
  replica 2.  L2 is an in-memory table by default and an on-disk
  :class:`~repro.pipeline.cache.ScheduleCache` when one is attached —
  in which case the disk cache's own counters move too, the same
  double-entry bookkeeping the single-node server exposes.

Every lookup is attributed to exactly one of ``l1_hits`` / ``l2_hits``
/ ``misses`` in :class:`TierStats`, per replica and fleet-wide; the
per-replica view also keeps a serve-compatible
:class:`~repro.pipeline.stats.CacheStats` so a :class:`~repro.serve
.server.ServerEngine` can consume it as its schedule store unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import MegaConfig
from repro.core.path import PathRepresentation
from repro.graph.graph import Graph
from repro.pipeline.cache import ScheduleCache
from repro.pipeline.hashing import schedule_cache_key
from repro.pipeline.parallel import compute_schedule, materialise
from repro.pipeline.stats import CacheStats


@dataclass
class TierStats:
    """Per-tier attribution of schedule lookups.

    Attributes
    ----------
    l1_hits:
        Lookups served from the replica-local memo.
    l2_hits:
        L1 misses served from the shared tier (and promoted into L1).
    misses:
        Lookups that recomputed Algorithm 1 (then fed both tiers).
    l2_puts:
        Entries written to the shared tier (one per miss).
    l1_invalidations / l2_invalidations:
        Entries evicted by keyed invalidation
        (:meth:`TieredScheduleCache.invalidate`) from the replica-local
        memos and the shared tier respectively — the streaming layer's
        versioned-key protocol retiring a superseded graph epoch.
    seeds:
        Entries written through :meth:`TieredScheduleCache.seed` — a
        repaired schedule pre-warmed under its new content key, so the
        first post-delta admission is an L2 hit instead of a full
        Algorithm 1 miss.
    """

    l1_hits: int = 0
    l2_hits: int = 0
    misses: int = 0
    l2_puts: int = 0
    l1_invalidations: int = 0
    l2_invalidations: int = 0
    seeds: int = 0

    @property
    def lookups(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.lookups if self.lookups else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.lookups if self.lookups else 0.0

    @property
    def hit_rate(self) -> float:
        """Any-tier hit rate (matches the single-node cache hit rate)."""
        hits = self.l1_hits + self.l2_hits
        return hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "TierStats") -> "TierStats":
        """Elementwise sum (fleet aggregation over replicas)."""
        return TierStats(
            l1_hits=self.l1_hits + other.l1_hits,
            l2_hits=self.l2_hits + other.l2_hits,
            misses=self.misses + other.misses,
            l2_puts=self.l2_puts + other.l2_puts,
            l1_invalidations=self.l1_invalidations + other.l1_invalidations,
            l2_invalidations=self.l2_invalidations + other.l2_invalidations,
            seeds=self.seeds + other.seeds)

    def as_dict(self) -> dict:
        return {"l1_hits": self.l1_hits, "l2_hits": self.l2_hits,
                "misses": self.misses, "l2_puts": self.l2_puts,
                "l1_invalidations": self.l1_invalidations,
                "l2_invalidations": self.l2_invalidations,
                "seeds": self.seeds}


class TieredScheduleCache:
    """The fleet's shared L2 plus a factory for per-replica L1 views.

    ``backing`` attaches an on-disk :class:`ScheduleCache` as the L2
    store (cross-run persistence, corruption handling and all); without
    it the L2 is a plain in-process table, which is what the bench
    workloads and most tests want — no tmpdir needed.
    """

    def __init__(self, config: MegaConfig,
                 backing: Optional[ScheduleCache] = None):
        self.config = config
        self.backing = backing
        self._l2: Dict[str, Tuple] = {}
        self.tier = TierStats()
        # Every view ever handed out, in creation order — keyed
        # invalidation must reach retired incarnations' L1 memos too
        # (they are dead engines, but determinism is cheaper than
        # reasoning about which views can still be probed).
        self._views: List["ReplicaScheduleView"] = []

    def view(self, replica_id: int) -> "ReplicaScheduleView":
        """The schedule store replica ``replica_id`` plugs into its engine."""
        created = ReplicaScheduleView(self, replica_id)
        self._views.append(created)
        return created

    # -- versioned-key protocol (called by repro.stream) ---------------
    def invalidate(self, key: str) -> Tuple[int, int, int]:
        """Evict ``key`` from every tier: (l1 entries, l2 entries, disk).

        The eviction half of the streaming invalidation protocol: the
        caller names exactly the superseded content key, so entries for
        untouched graphs are never disturbed.  In-flight requests are
        unaffected by construction — their path representation was
        resolved (and pinned) at admission.
        """
        l1_removed = 0
        for view in self._views:
            if view._l1.pop(key, None) is not None:
                l1_removed += 1
                view.tier.l1_invalidations += 1
        l2_removed = int(self._l2.pop(key, None) is not None)
        disk_removed = 0
        if self.backing is not None and self.backing.invalidate(key):
            disk_removed = 1
        self.tier.l1_invalidations += l1_removed
        self.tier.l2_invalidations += l2_removed + disk_removed
        return l1_removed, l2_removed, disk_removed

    def seed(self, key: str, entry: Tuple) -> None:
        """Install a ready-made schedule under ``key`` in the shared tier.

        The warm half of the protocol: a repaired (or recomputed)
        schedule goes straight into L2 — and the disk backing when one
        is attached — so the first admission against the new epoch
        promotes it into a replica's L1 instead of running Algorithm 1.
        """
        self._l2_put(key, entry)
        self.tier.seeds += 1

    # -- shared-tier access (called by the views) ----------------------
    def _l2_get(self, key: str) -> Optional[Tuple]:
        entry = self._l2.get(key)
        if entry is not None:
            return entry
        if self.backing is not None:
            entry = self.backing.get(key)
            if entry is not None:
                # Memo the disk read so repeat L2 hits stay in-process.
                self._l2[key] = entry
                return entry
        return None

    def _l2_put(self, key: str, entry: Tuple) -> None:
        self._l2[key] = entry
        if self.backing is not None:
            self.backing.put(key, *entry)


class ReplicaScheduleView:
    """One replica's window onto the tiered cache.

    Duck-compatible with :class:`~repro.serve.server.ScheduleStore`
    (``resolve(graph) -> (path, hit)`` plus a ``stats``
    :class:`CacheStats`), so the :class:`~repro.serve.server
    .ServerEngine` cannot tell tiered and single-node stores apart.
    The extra ``tier`` breakdown is what the cluster stats aggregate.
    """

    def __init__(self, parent: TieredScheduleCache, replica_id: int):
        self.parent = parent
        self.replica_id = replica_id
        self._l1: Dict[str, Tuple] = {}
        self.stats = CacheStats()
        self.tier = TierStats()
        #: Lookups served before the first L1 hit (-1 until one lands).
        #: For a view created at a replica rejoin this is the cold-L1
        #: warm-up length the recovery records surface.
        self.lookups_to_first_l1_hit = -1

    def resolve(self, graph: Graph) -> Tuple[PathRepresentation, bool]:
        """Path representation for ``graph``; True when cache-served."""
        config = self.parent.config
        key = schedule_cache_key(graph, config)
        entry = self._l1.get(key)
        if entry is not None:
            if self.lookups_to_first_l1_hit < 0:
                self.lookups_to_first_l1_hit = self.tier.lookups
            self.stats.hits += 1
            self.tier.l1_hits += 1
            self.parent.tier.l1_hits += 1
            return materialise(graph, config, entry[0]), True
        entry = self.parent._l2_get(key)
        if entry is not None:
            self._l1[key] = entry
            self.stats.hits += 1
            self.tier.l2_hits += 1
            self.parent.tier.l2_hits += 1
            return materialise(graph, config, entry[0]), True
        entry = compute_schedule(graph, config)
        self.parent._l2_put(key, entry)
        self._l1[key] = entry
        self.stats.misses += 1
        self.stats.puts += 1
        self.tier.misses += 1
        self.tier.l2_puts += 1
        self.parent.tier.misses += 1
        self.parent.tier.l2_puts += 1
        return materialise(graph, config, entry[0]), False
