"""Sharded multi-replica serving: the fleet above :mod:`repro.serve`.

One :class:`~repro.serve.server.InferenceServer` scales the paper's
efficiency story vertically; this package scales it horizontally — the
ROADMAP's "heavy traffic from millions of users" made concrete as N
deterministic replicas behind a router, still byte-replayable:

- :mod:`repro.cluster.routing` — consistent-hash ring over graph
  content keys plus the pluggable load-balance policies
  (``round-robin``, ``hash-affinity``, ``least-queue``).
- :mod:`repro.cluster.cache` — the two-tier schedule cache:
  replica-local L1 memos over one shared L2, with per-tier hit
  attribution (:class:`TierStats`).
- :mod:`repro.cluster.cluster` — the shared-clock event loop driving N
  :class:`~repro.serve.server.ServerEngine` replicas, with seeded
  replica crashes (:meth:`repro.resilience.FaultPlan.replica_fails`),
  ring rebalancing and bounded failover.
- :mod:`repro.cluster.health` — the self-healing layer: per-replica
  ``alive -> crashed -> recovering -> alive`` state machines, seeded
  replica recovery with cold-L1 warm-up records, straggler circuit
  breakers with hedged failover, and brownout admission control.
- :mod:`repro.cluster.stats` — :class:`ClusterStats`: fleet
  p50/p95/p99, throughput, per-tier hit rates, failover, recovery,
  shed and rebalance counts; ``as_dict()`` is the byte-identical
  replay surface.

Two seeded cluster loadtests — crashes, recoveries and stragglers
included — produce identical stats bytes; see ``docs/cluster.md`` for
the routing/failover matrix.
"""

from repro.cluster.cache import (
    ReplicaScheduleView,
    TieredScheduleCache,
    TierStats,
)
from repro.cluster.cluster import Cluster, ClusterConfig, ClusterResult
from repro.cluster.health import (
    BREAKER_STATES,
    BrownoutController,
    CircuitBreaker,
    FleetHealth,
    HEALTH_STATES,
    HealthTransition,
    RecoveryRecord,
    ReplicaHealth,
)
from repro.cluster.routing import (
    HashAffinityPolicy,
    HashRing,
    LeastQueuePolicy,
    LoadBalancePolicy,
    POLICIES,
    RoundRobinPolicy,
    make_policy,
)
from repro.cluster.stats import (
    ClusterStats,
    FailedRequest,
    FAILURE_REASONS,
    ReplicaRecord,
    ShedRequest,
)

__all__ = [
    "TierStats",
    "TieredScheduleCache",
    "ReplicaScheduleView",
    "Cluster",
    "ClusterConfig",
    "ClusterResult",
    "HEALTH_STATES",
    "BREAKER_STATES",
    "HealthTransition",
    "ReplicaHealth",
    "CircuitBreaker",
    "BrownoutController",
    "RecoveryRecord",
    "FleetHealth",
    "HashRing",
    "LoadBalancePolicy",
    "RoundRobinPolicy",
    "HashAffinityPolicy",
    "LeastQueuePolicy",
    "POLICIES",
    "make_policy",
    "ClusterStats",
    "ReplicaRecord",
    "FailedRequest",
    "ShedRequest",
    "FAILURE_REASONS",
]
