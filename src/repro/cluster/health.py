"""Per-replica health: state machine, circuit breaker, brownout.

PR 7 gave the cluster exactly one fault shape — a clean, permanent
crash.  This module is the self-healing layer on top: every replica
carries an explicit health state machine, slow replicas are detected
and routed around, recovered replicas rejoin, and when too much
capacity is gone the fleet browns out instead of queueing itself to
death.  Three deterministic pieces:

* :class:`ReplicaHealth` — the ``alive -> crashed -> recovering ->
  alive`` state machine.  Transitions happen only at simulated-clock
  instants the cluster's event loop produces (crash at a batch launch,
  rejoin at a seeded recovery delay, alive again at the first
  post-rejoin completion), so the full transition log is part of the
  byte-identical replay surface.
* :class:`CircuitBreaker` — the straggler defence.  A batch is *slow*
  when its observed service time exceeds the analytic expectation by
  the configured ratio; ``threshold`` consecutive slow batches trip
  the breaker (``closed -> open``), new traffic routes around the
  replica, and after a seeded cooldown the breaker goes ``half-open``:
  the next completed batch is the probe that either closes it or
  re-opens it with a longer cooldown.
* :class:`BrownoutController` — degraded-mode admission.  When the
  alive fraction of the fleet drops below the watermark, a
  deterministic credit counter admits requests in proportion to the
  surviving capacity and sheds the excess with typed
  ``shed-capacity`` outcomes and capacity-scaled retry-after hints
  (:func:`repro.serve.queueing.scale_retry_after`).

Nothing here reads a clock or an RNG: every decision is a pure
function of the simulated timestamps the cluster passes in and of
:meth:`repro.resilience.FaultPlan.roll`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ClusterError

#: The replica lifecycle states, in first-reachable order.
HEALTH_STATES = ("alive", "crashed", "recovering")

#: The circuit-breaker states, in first-reachable order.
BREAKER_STATES = ("closed", "open", "half-open")

#: Legal state-machine moves; anything else is a cluster bug.
_LEGAL_TRANSITIONS = (("alive", "crashed"),
                      ("crashed", "recovering"),
                      ("recovering", "alive"),
                      ("recovering", "crashed"))


@dataclass(frozen=True)
class HealthTransition:
    """One edge of a replica's lifecycle, at a simulated instant."""

    from_state: str
    to_state: str
    at_s: float

    def as_dict(self) -> Dict:
        return {"from": self.from_state, "to": self.to_state,
                "at_s": self.at_s}


class ReplicaHealth:
    """The ``alive -> crashed -> recovering -> alive`` machine.

    ``incarnation`` counts rejoins (0 for the original engine);
    ``crashes`` and ``recoveries`` count edge traversals.  A
    ``recovering`` replica is already routable — it rejoined the ring
    with a cold L1 — and is promoted back to ``alive`` when its first
    post-rejoin batch completes (it proved it can serve).  Illegal
    transitions raise :class:`~repro.errors.ClusterError` rather than
    corrupting the replay surface.
    """

    def __init__(self, replica_id: int):
        self.replica_id = replica_id
        self.state = "alive"
        self.incarnation = 0
        self.crashes = 0
        self.recoveries = 0
        self.transitions: List[HealthTransition] = []

    def _move(self, to_state: str, at_s: float) -> None:
        if (self.state, to_state) not in _LEGAL_TRANSITIONS:
            raise ClusterError(
                f"illegal health transition {self.state!r} -> "
                f"{to_state!r} for replica {self.replica_id}")
        self.transitions.append(
            HealthTransition(self.state, to_state, at_s))
        self.state = to_state

    def mark_crashed(self, at_s: float) -> None:
        self._move("crashed", at_s)
        self.crashes += 1

    def mark_recovering(self, at_s: float) -> None:
        """The replica rejoins: fresh engine, cold L1, back on the ring."""
        self._move("recovering", at_s)
        self.incarnation += 1

    def mark_alive(self, at_s: float) -> None:
        """First post-rejoin completion: the replica is healed."""
        self._move("alive", at_s)
        self.recoveries += 1

    @property
    def routable(self) -> bool:
        """Crashed replicas take no traffic; alive/recovering do."""
        return self.state != "crashed"

    def as_dict(self) -> Dict:
        return {"replica_id": self.replica_id,
                "state": self.state,
                "incarnation": self.incarnation,
                "crashes": self.crashes,
                "recoveries": self.recoveries,
                "transitions": [t.as_dict() for t in self.transitions]}


class CircuitBreaker:
    """Per-replica straggler breaker: closed -> open -> half-open.

    ``threshold`` consecutive slow completions trip the breaker at the
    completion instant; while open the replica takes no new traffic
    (its queued work was hedged away by the cluster).  After
    ``cooldown_s`` — stretched by ``(1 + trips)`` so a repeat offender
    backs off longer, plus a seeded jitter share when a fault plan is
    attached — the breaker goes half-open and the next completed batch
    is the probe: healthy closes it, slow re-opens it.  ``threshold``
    of 0 disables the breaker entirely (every query answers
    "routable").
    """

    def __init__(self, replica_id: int, threshold: int,
                 cooldown_s: float, fault_plan=None):
        if threshold < 0:
            raise ClusterError(
                f"breaker threshold must be >= 0, got {threshold}")
        if cooldown_s < 0.0:
            raise ClusterError(
                f"breaker cooldown_s must be >= 0, got {cooldown_s}")
        self.replica_id = replica_id
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.fault_plan = fault_plan
        self.state = "closed"
        self.consecutive_slow = 0
        self.trips = 0
        self.probes = 0
        self.open_until_s = 0.0
        self.transitions: List[HealthTransition] = []

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def _move(self, to_state: str, at_s: float) -> None:
        self.transitions.append(
            HealthTransition(self.state, to_state, at_s))
        self.state = to_state

    def _cooldown(self) -> float:
        base = self.cooldown_s * self.trips
        if self.fault_plan is not None:
            # Seeded jitter keyed on the trip index: deterministic, but
            # two replicas tripping together do not probe together.
            base += self.cooldown_s * self.fault_plan.roll(
                "breaker", self.replica_id, self.trips)
        return base

    def _trip(self, at_s: float) -> None:
        self.trips += 1
        self.open_until_s = at_s + self._cooldown()
        self._move("open", at_s)

    def advance(self, now_s: float) -> None:
        """Open -> half-open once the cooldown has elapsed."""
        if (self.enabled and self.state == "open"
                and now_s >= self.open_until_s):
            self._move("half-open", now_s)

    @property
    def routable(self) -> bool:
        """May the router send this replica new traffic right now?

        Callers :meth:`advance` the breaker to ``now`` first; half-open
        is routable — that is what delivers the probe batch.
        """
        return not self.enabled or self.state != "open"

    def record_completion(self, slow: bool, now_s: float) -> bool:
        """Account one finished batch; True when this trip opened it.

        In the closed state, slow completions accumulate and
        ``threshold`` consecutive ones trip the breaker; a healthy
        completion resets the streak.  In the half-open state the batch
        is the probe: healthy closes the breaker, slow re-opens it
        with a longer cooldown.
        """
        if not self.enabled:
            return False
        if self.state == "half-open":
            self.probes += 1
            if slow:
                self._trip(now_s)
                return True
            self.consecutive_slow = 0
            self._move("closed", now_s)
            return False
        if self.state == "open":
            # A batch launched before the trip is still draining; it
            # carries no routing signal.
            return False
        if slow:
            self.consecutive_slow += 1
            if self.consecutive_slow >= self.threshold:
                self._trip(now_s)
                return True
        else:
            self.consecutive_slow = 0
        return False

    def as_dict(self) -> Dict:
        return {"replica_id": self.replica_id,
                "state": self.state,
                "trips": self.trips,
                "probes": self.probes,
                "consecutive_slow": self.consecutive_slow,
                "transitions": [t.as_dict() for t in self.transitions]}


class BrownoutController:
    """Deterministic degraded-mode admission (load shedding).

    While the alive fraction of the fleet is at or above ``watermark``
    every request is admitted and the controller is invisible.  Below
    it, a credit counter accrues ``alive/total`` per request and
    admits one request per whole credit — so over any window the
    admitted fraction tracks the surviving capacity exactly, with no
    randomness and no dependence on arrival timing.  Shed requests
    carry a retry-after hint scaled by the lost capacity
    (:func:`~repro.serve.queueing.scale_retry_after` over
    ``base_retry_after_s``).

    ``watermark`` of 0 disables brownout (the fleet queues and rejects
    as before); 1.0 sheds proportionally on any capacity loss.
    """

    def __init__(self, watermark: float, base_retry_after_s: float):
        if not 0.0 <= watermark <= 1.0:
            raise ClusterError(
                f"brownout watermark must be in [0, 1], got {watermark}")
        if base_retry_after_s < 0.0:
            raise ClusterError(
                f"base_retry_after_s must be >= 0, "
                f"got {base_retry_after_s}")
        self.watermark = watermark
        self.base_retry_after_s = base_retry_after_s
        self.credits = 0.0
        self.admitted = 0
        self.shed_events = 0

    @property
    def enabled(self) -> bool:
        return self.watermark > 0.0

    def active(self, alive: int, total: int) -> bool:
        """Is the fleet below the watermark (brownout in force)?"""
        if not self.enabled or total < 1:
            return False
        return alive < self.watermark * total

    def consider(self, alive: int, total: int) -> Optional[float]:
        """Admit (``None``) or shed (the retry-after hint in seconds).

        Callers only invoke this with ``alive >= 1`` — a fleet with no
        replicas at all fails requests as ``no-replicas-alive`` before
        admission control is consulted.
        """
        from repro.serve.queueing import scale_retry_after

        if not self.active(alive, total):
            self.admitted += 1
            return None
        self.credits += alive / total
        if self.credits >= 1.0:
            self.credits -= 1.0
            self.admitted += 1
            return None
        self.shed_events += 1
        return scale_retry_after(self.base_retry_after_s, alive, total)

    def as_dict(self) -> Dict:
        return {"watermark": self.watermark,
                "admitted": self.admitted,
                "shed_events": self.shed_events}


@dataclass
class RecoveryRecord:
    """One replica rejoin, with its cold-L1 warm-up trajectory.

    The warm-up counters are the recovered incarnation's
    :class:`~repro.cluster.cache.TierStats` — by construction every
    lookup after the rejoin starts from an empty L1, so ``l2_hits``
    are the promotions that re-warm it and ``lookups_to_first_l1_hit``
    measures how quickly routing locality re-establishes (-1 when the
    incarnation never hit its L1).
    """

    replica_id: int
    incarnation: int
    crashed_at_s: float
    recovered_at_s: float
    warmup_lookups: int = 0
    warmup_l1_hits: int = 0
    warmup_l2_hits: int = 0
    warmup_misses: int = 0
    lookups_to_first_l1_hit: int = -1

    @property
    def warmup_l1_hit_rate(self) -> float:
        if self.warmup_lookups == 0:
            return 0.0
        return self.warmup_l1_hits / self.warmup_lookups

    def as_dict(self) -> Dict:
        return {"replica_id": self.replica_id,
                "incarnation": self.incarnation,
                "crashed_at_s": self.crashed_at_s,
                "recovered_at_s": self.recovered_at_s,
                "warmup_lookups": self.warmup_lookups,
                "warmup_l1_hits": self.warmup_l1_hits,
                "warmup_l2_hits": self.warmup_l2_hits,
                "warmup_misses": self.warmup_misses,
                "lookups_to_first_l1_hit": self.lookups_to_first_l1_hit}


class FleetHealth:
    """The fleet's health book: one machine and one breaker per replica."""

    def __init__(self, replica_ids, breaker_threshold: int = 0,
                 breaker_cooldown_s: float = 0.0, fault_plan=None):
        self.replicas: Dict[int, ReplicaHealth] = {
            rid: ReplicaHealth(rid) for rid in replica_ids}
        self.breakers: Dict[int, CircuitBreaker] = {
            rid: CircuitBreaker(rid, breaker_threshold,
                                breaker_cooldown_s, fault_plan)
            for rid in replica_ids}
        self.recoveries: List[RecoveryRecord] = []

    def of(self, replica_id: int) -> ReplicaHealth:
        return self.replicas[replica_id]

    def breaker(self, replica_id: int) -> CircuitBreaker:
        return self.breakers[replica_id]

    def alive_ids(self):
        """Replicas currently taking traffic, ascending."""
        return [rid for rid in sorted(self.replicas)
                if self.replicas[rid].routable]

    def routable_ids(self, now_s: float):
        """Alive replicas whose breaker admits new traffic at ``now``.

        Advances open breakers whose cooldown elapsed (open ->
        half-open) as a side effect — the lazy transition is
        deterministic because ``now`` comes from the simulated event
        loop.  When every alive breaker is open, the alive set is
        returned unfiltered: a slow replica still beats none.
        """
        alive = self.alive_ids()
        for rid in alive:
            self.breakers[rid].advance(now_s)
        routable = [rid for rid in alive if self.breakers[rid].routable]
        return routable if routable else alive

    def as_dict(self) -> Dict:
        return {
            "replicas": [self.replicas[rid].as_dict()
                         for rid in sorted(self.replicas)],
            "breakers": [self.breakers[rid].as_dict()
                         for rid in sorted(self.breakers)],
            "recoveries": [r.as_dict() for r in self.recoveries],
        }
