"""Reproduction of "MEGA: More Efficient Graph Attention for GNNs" (ICDCS'24).

Top-level convenience re-exports.  Sub-packages:

- :mod:`repro.tensor`  — numpy autograd engine (neural-op substrate)
- :mod:`repro.graph`   — COO/CSR graphs, batching, generators
- :mod:`repro.datasets`— synthetic ZINC/AQSOL/CSL/CYCLES stand-ins
- :mod:`repro.memsim`  — analytical GPU memory/profiling model
- :mod:`repro.core`    — MEGA: traversal scheduler, path representation,
  adaptive diagonal attention, WL isomorphism scoring
- :mod:`repro.models`  — GatedGCN and Graph Transformer (baseline + MEGA)
- :mod:`repro.train`   — training loops with simulated wall clock
- :mod:`repro.distributed` — partitioning and communication analysis
- :mod:`repro.serve`   — deterministic inference serving: bounded
  admission, dynamic micro-batching, schedule-cache reuse, SLO metrics
"""

__version__ = "1.0.0"

from repro.errors import (
    CheckpointError,
    ConfigError,
    DivergenceError,
    FaultInjectionError,
    GraphError,
    QueueFullError,
    ReproError,
    ScheduleError,
    ServeError,
    ShapeError,
    SimulationError,
    TransientError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ShapeError",
    "GraphError",
    "ScheduleError",
    "ConfigError",
    "SimulationError",
    "CheckpointError",
    "TransientError",
    "FaultInjectionError",
    "DivergenceError",
    "ServeError",
    "QueueFullError",
]
