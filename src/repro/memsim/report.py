"""Human-readable profiler reports and side-by-side comparisons.

Renders :class:`~repro.memsim.profiler.Profiler` contents the way the
paper's figures present them: per-kernel tables, time-share bar charts,
and a baseline-vs-MEGA diff with the headline normalised metrics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.memsim.profiler import Profiler


def format_profile(profiler: Profiler, title: str = "profile") -> str:
    """Full nvprof-style text report for one execution."""
    if not profiler.records:
        raise SimulationError("profiler holds no kernel records")
    rows = profiler.summary()
    lines = [f"=== {title} ===",
             f"{'kernel':16s} {'calls':>5s} {'time':>10s} {'share':>7s} "
             f"{'sm_eff':>7s} {'stall':>7s} {'loads':>10s} {'l2hit':>6s}"]
    for row in rows:
        lines.append(
            f"{row['kernel']:16s} {row['calls']:5d} "
            f"{row['time_s'] * 1e6:8.1f}us {row['time_pct']:7.1%} "
            f"{row['sm_efficiency']:7.2f} {row['memory_stall_pct']:7.2f} "
            f"{row['load_transactions']:10d} {row['l2_hit_rate']:6.2f}")
    lines.append(
        f"{'TOTAL':16s} {profiler.total_calls:5d} "
        f"{profiler.total_time * 1e6:8.1f}us "
        f"{'':7s} "
        f"{profiler.normalized_metric('sm_efficiency'):7.2f} "
        f"{profiler.normalized_metric('memory_stall_pct'):7.2f}")
    return "\n".join(lines)


def time_share_chart(profiler: Profiler, width: int = 40) -> str:
    """Bar chart of per-kernel time shares (Fig. 5 style)."""
    from repro.core.viz import render_bar_chart

    rows = profiler.summary()
    return render_bar_chart([r["kernel"] for r in rows],
                            [r["time_pct"] * 100 for r in rows],
                            width=width, unit="%")


def compare_profiles(baseline: Profiler, candidate: Profiler,
                     names: Optional[tuple] = None) -> str:
    """Side-by-side summary with speedup and metric deltas."""
    if not baseline.records or not candidate.records:
        raise SimulationError("both profilers need kernel records")
    names = names or ("baseline", "candidate")
    speedup = baseline.total_time / candidate.total_time \
        if candidate.total_time else float("inf")
    lines = [
        f"{'':24s}{names[0]:>14s}{names[1]:>14s}",
        f"{'total time':24s}{baseline.total_time * 1e3:12.3f}ms"
        f"{candidate.total_time * 1e3:12.3f}ms",
        f"{'kernel launches':24s}{baseline.total_calls:14d}"
        f"{candidate.total_calls:14d}",
        f"{'norm SM efficiency':24s}"
        f"{baseline.normalized_metric('sm_efficiency'):14.3f}"
        f"{candidate.normalized_metric('sm_efficiency'):14.3f}",
        f"{'norm memory stalls':24s}"
        f"{baseline.normalized_metric('memory_stall_pct'):14.3f}"
        f"{candidate.normalized_metric('memory_stall_pct'):14.3f}",
        f"{'DRAM bytes':24s}"
        f"{sum(r.dram_bytes for r in baseline.records) / 1e6:12.2f}MB"
        f"{sum(r.dram_bytes for r in candidate.records) / 1e6:12.2f}MB",
        "",
        f"speedup ({names[1]} over {names[0]}): {speedup:.2f}x",
    ]
    return "\n".join(lines)
