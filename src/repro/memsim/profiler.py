"""nvprof-like aggregation of simulated kernel statistics.

Collects :class:`KernelStats` records and reports the metrics Section
III-A and IV-B read off nvprof: per-kernel SM efficiency, memory-stall
percentage, global-load transactions, call counts, run-time percentages,
and the paper's call-weighted normalised metric

    Metric = Σ_k metric_k · n_k / Σ_k n_k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from repro.errors import SimulationError
from repro.memsim.device import KernelStats


@dataclass
class KernelAggregate:
    """Accumulated statistics for one kernel name."""

    name: str
    calls: int = 0
    time_s: float = 0.0
    flops: float = 0.0
    load_transactions: int = 0
    store_transactions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_bytes: float = 0.0
    _sm_eff_sum: float = 0.0
    _stall_sum: float = 0.0

    def add(self, stats: KernelStats) -> None:
        self.calls += 1
        self.time_s += stats.time_s
        self.flops += stats.flops
        self.load_transactions += stats.load_transactions
        self.store_transactions += stats.store_transactions
        self.l2_hits += stats.l2_hits
        self.l2_misses += stats.l2_misses
        self.dram_bytes += stats.dram_bytes
        self._sm_eff_sum += stats.sm_efficiency
        self._stall_sum += stats.memory_stall_pct

    @property
    def sm_efficiency(self) -> float:
        """Mean SM efficiency across calls of this kernel."""
        return self._sm_eff_sum / self.calls if self.calls else 0.0

    @property
    def memory_stall_pct(self) -> float:
        return self._stall_sum / self.calls if self.calls else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0


class Profiler:
    """Collects kernel records for one profiled execution."""

    def __init__(self) -> None:
        self.records: List[KernelStats] = []

    def record(self, stats: KernelStats) -> KernelStats:
        self.records.append(stats)
        return stats

    def extend(self, stats_list: Iterable[KernelStats]) -> None:
        for s in stats_list:
            self.record(s)

    # ------------------------------------------------------------------
    def by_kernel(self) -> Dict[str, KernelAggregate]:
        out: Dict[str, KernelAggregate] = {}
        for s in self.records:
            agg = out.setdefault(s.name, KernelAggregate(s.name))
            agg.add(s)
        return out

    @property
    def total_time(self) -> float:
        return sum(s.time_s for s in self.records)

    @property
    def total_calls(self) -> int:
        return len(self.records)

    def time_percentages(self) -> Dict[str, float]:
        """Share of total run time per kernel (Fig. 5 / Fig. 10)."""
        total = self.total_time
        if total <= 0:
            return {}
        return {name: agg.time_s / total
                for name, agg in self.by_kernel().items()}

    def normalized_metric(self, metric: str) -> float:
        """The paper's call-weighted average of a per-kernel metric.

        ``metric`` is an attribute of :class:`KernelAggregate` that is a
        per-call average, e.g. ``"sm_efficiency"`` or
        ``"memory_stall_pct"``.
        """
        aggs = self.by_kernel().values()
        total_calls = sum(a.calls for a in aggs)
        if total_calls == 0:
            raise SimulationError("no kernels recorded")
        weighted = sum(getattr(a, metric) * a.calls for a in aggs)
        return weighted / total_calls

    def call_counts(self) -> Dict[str, int]:
        return {name: agg.calls for name, agg in self.by_kernel().items()}

    def global_loads(self) -> Dict[str, int]:
        """Warp-level global load transactions per kernel (Fig. 6)."""
        return {name: agg.load_transactions
                for name, agg in self.by_kernel().items()}

    def summary(self) -> List[dict]:
        """Row dicts ready for tabular printing in the benchmarks."""
        total = self.total_time
        rows = []
        for name, agg in sorted(self.by_kernel().items(),
                                key=lambda kv: -kv[1].time_s):
            rows.append({
                "kernel": name,
                "calls": agg.calls,
                "time_s": agg.time_s,
                "time_pct": agg.time_s / total if total else 0.0,
                "sm_efficiency": agg.sm_efficiency,
                "memory_stall_pct": agg.memory_stall_pct,
                "load_transactions": agg.load_transactions,
                "l2_hit_rate": agg.l2_hit_rate,
                "dram_bytes": agg.dram_bytes,
            })
        return rows
