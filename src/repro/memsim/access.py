"""Memory-access traces: the bridge from kernels to the cache model.

A kernel's memory behaviour is described as a sequence of *row accesses*
into named regions (node-feature matrix, edge-feature matrix, path
buffer, weights...).  :class:`MemoryLayout` assigns each region a base
address; :class:`AccessTrace` expands row accesses into the aligned
sector addresses the cache model consumes.

The crucial property: traces are built from the *actual index arrays*
the algorithms use (CSR neighbour lists, band plans), so coalescing and
locality are consequences of the algorithm, not assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError


class MemoryLayout:
    """Allocator assigning disjoint address ranges to named regions."""

    _ALIGN = 256

    def __init__(self) -> None:
        self._regions: Dict[str, Tuple[int, int]] = {}
        self._next = 0

    def allocate(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        if nbytes < 0:
            raise SimulationError(f"negative allocation for {name!r}")
        if name in self._regions:
            raise SimulationError(f"region {name!r} already allocated")
        base = self._next
        size = int(np.ceil(max(nbytes, 1) / self._ALIGN)) * self._ALIGN
        self._regions[name] = (base, size)
        self._next += size
        return base

    def base(self, name: str) -> int:
        if name not in self._regions:
            raise SimulationError(f"unknown region {name!r}")
        return self._regions[name][0]

    def size(self, name: str) -> int:
        if name not in self._regions:
            raise SimulationError(f"unknown region {name!r}")
        return self._regions[name][1]

    @property
    def total_bytes(self) -> int:
        return self._next


@dataclass
class AccessTrace:
    """An ordered list of (address, nbytes) row accesses."""

    addresses: np.ndarray   # int64 byte addresses
    lengths: np.ndarray     # int64 byte lengths

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        if self.addresses.shape != self.lengths.shape:
            raise SimulationError("addresses and lengths must align")

    @property
    def num_accesses(self) -> int:
        return int(len(self.addresses))

    @property
    def total_bytes(self) -> int:
        return int(self.lengths.sum())

    def sector_addresses(self, sector_bytes: int) -> np.ndarray:
        """Expand row accesses into aligned sector addresses, in order.

        Consecutive rows that fall in the same sector deduplicate at the
        cache (as hits); alignment itself models the transaction
        granularity: a 4-byte touch still moves a whole sector.
        """
        if sector_bytes <= 0:
            raise SimulationError("sector_bytes must be positive")
        if self.num_accesses == 0:
            return np.array([], dtype=np.int64)
        first = self.addresses // sector_bytes
        last = (self.addresses + np.maximum(self.lengths, 1) - 1) // sector_bytes
        counts = (last - first + 1).astype(np.int64)
        total = int(counts.sum())
        out = np.empty(total, dtype=np.int64)
        # repeat + cumulative offsets trick: sector index within each row
        row_starts = np.repeat(first, counts)
        offsets = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        out = (row_starts + offsets) * sector_bytes
        return out

    @staticmethod
    def concatenate(traces: List["AccessTrace"]) -> "AccessTrace":
        traces = [t for t in traces if t.num_accesses]
        if not traces:
            return AccessTrace(np.array([], np.int64), np.array([], np.int64))
        return AccessTrace(
            np.concatenate([t.addresses for t in traces]),
            np.concatenate([t.lengths for t in traces]))


def row_gather_trace(base: int, row_indices: np.ndarray,
                     row_bytes: int) -> AccessTrace:
    """Trace for fetching rows ``row_indices`` of a matrix at ``base``.

    The order of ``row_indices`` is the order the kernel touches memory;
    scattered indices produce the irregular pattern the paper profiles,
    sorted/sequential indices produce the regularised one.
    """
    row_indices = np.asarray(row_indices, dtype=np.int64)
    addresses = base + row_indices * row_bytes
    lengths = np.full(len(row_indices), row_bytes, dtype=np.int64)
    return AccessTrace(addresses, lengths)


def sequential_trace(base: int, nbytes: int,
                     chunk_bytes: int = 4096) -> AccessTrace:
    """Trace for streaming a region start-to-end (dense kernels)."""
    if nbytes <= 0:
        return AccessTrace(np.array([], np.int64), np.array([], np.int64))
    starts = np.arange(0, nbytes, chunk_bytes, dtype=np.int64)
    lengths = np.minimum(chunk_bytes, nbytes - starts)
    return AccessTrace(base + starts, lengths)


def strided_trace(base: int, start_row: int, num_rows: int, row_bytes: int,
                  stride_rows: int = 1) -> AccessTrace:
    """Trace for a regular strided sweep of rows."""
    rows = start_row + stride_rows * np.arange(num_rows, dtype=np.int64)
    return row_gather_trace(base, rows, row_bytes)
