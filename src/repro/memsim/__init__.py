"""Analytical GPU model: device, cache, traces, kernels, profiler.

Substitutes for the paper's GTX 1080 + nvprof testbed.  Kernel timing is
a roofline (max of compute and memory time plus launch overhead); memory
time comes from DRAM transactions counted by an exact LRU model of the
L2 fed with the *actual* address traces of each kernel.
"""

from repro.memsim.access import (
    AccessTrace,
    MemoryLayout,
    row_gather_trace,
    sequential_trace,
    strided_trace,
)
from repro.memsim.cache import LRUCache
from repro.memsim.device import (
    A100_LIKE,
    DEVICE_PRESETS,
    GTX_1080,
    OLD_MOBILE,
    V100_LIKE,
    DeviceSpec,
    GPUDevice,
    KernelStats,
)
from repro.memsim.profiler import KernelAggregate, Profiler
from repro.memsim.report import compare_profiles, format_profile, time_share_chart
from repro.memsim.trace_analysis import TraceStats, analyze_trace, compare_traces
from repro.memsim import kernels

__all__ = [
    "AccessTrace",
    "MemoryLayout",
    "row_gather_trace",
    "sequential_trace",
    "strided_trace",
    "LRUCache",
    "DeviceSpec",
    "GPUDevice",
    "KernelStats",
    "GTX_1080",
    "V100_LIKE",
    "A100_LIKE",
    "OLD_MOBILE",
    "DEVICE_PRESETS",
    "Profiler",
    "format_profile",
    "compare_profiles",
    "time_share_chart",
    "TraceStats",
    "analyze_trace",
    "compare_traces",
    "KernelAggregate",
    "kernels",
]
