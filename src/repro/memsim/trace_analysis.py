"""Locality analysis of memory-access traces.

Quantifies *why* a schedule is fast or slow before any timing model is
applied: stride distributions, run lengths, reuse distances, and a
single scalar locality score.  Used by the schedule-analysis report and
the documentation examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.memsim.access import AccessTrace


@dataclass(frozen=True)
class TraceStats:
    """Locality statistics of one access trace (line granularity)."""

    num_accesses: int
    unique_lines: int
    sequential_fraction: float    # accesses continuing a +1-line run
    repeat_fraction: float        # accesses hitting the previous line
    mean_run_length: float
    mean_abs_stride: float        # in lines
    median_reuse_distance: float  # distinct lines between reuses (inf-free)
    reuse_fraction: float         # accesses that revisit an earlier line

    @property
    def locality_score(self) -> float:
        """[0, 1]: 1 = perfect stream or register-level reuse.

        Blends stream continuity (sequential/repeat fractions, run
        length) with stride smallness — a banded walk with tiny strides
        scores high even where strict +1 continuity breaks.
        """
        stride_term = 1.0 / (1.0 + self.mean_abs_stride / 4.0)
        return float(np.clip(
            0.4 * self.sequential_fraction
            + 0.2 * self.repeat_fraction
            + 0.2 * min(self.mean_run_length / 16.0, 1.0)
            + 0.2 * stride_term, 0.0, 1.0))


def analyze_trace(trace: AccessTrace, line_bytes: int = 128,
                  max_accesses: int = 200000) -> TraceStats:
    """Compute :class:`TraceStats` for a trace at ``line_bytes`` granularity.

    Reuse distances use the exact stack-distance definition but are
    computed on a capped prefix for very long traces.
    """
    if line_bytes <= 0:
        raise SimulationError("line_bytes must be positive")
    sectors = trace.sector_addresses(line_bytes)
    if sectors.size == 0:
        raise SimulationError("empty trace")
    lines = (sectors // line_bytes)[:max_accesses]
    n = len(lines)
    deltas = np.diff(lines)
    seq = int((deltas == 1).sum())
    rep = int((deltas == 0).sum())
    runs = max(n - seq - rep, 1)

    # Exact reuse (stack) distances via an ordered "recency" structure.
    from collections import OrderedDict

    stack: "OrderedDict[int, None]" = OrderedDict()
    distances = []
    reuses = 0
    for line in lines.tolist():
        if line in stack:
            # Distance = number of distinct lines touched since last use.
            depth = 0
            for key in reversed(stack):
                if key == line:
                    break
                depth += 1
            distances.append(depth)
            reuses += 1
            stack.move_to_end(line)
        else:
            stack[line] = None
    return TraceStats(
        num_accesses=n,
        unique_lines=int(len(np.unique(lines))),
        sequential_fraction=seq / max(n - 1, 1),
        repeat_fraction=rep / max(n - 1, 1),
        mean_run_length=n / runs,
        mean_abs_stride=float(np.abs(deltas).mean()) if deltas.size else 0.0,
        median_reuse_distance=float(np.median(distances))
        if distances else 0.0,
        reuse_fraction=reuses / n)


def compare_traces(traces: Dict[str, AccessTrace],
                   line_bytes: int = 128) -> Dict[str, TraceStats]:
    """Analyze several traces (e.g. baseline vs MEGA access streams)."""
    return {name: analyze_trace(trace, line_bytes)
            for name, trace in traces.items()}
