"""Kernel cost models: the GPU-side vocabulary of GNN training.

Each function executes one simulated kernel on a :class:`GPUDevice` and
returns its :class:`KernelStats`.  Kernel names follow the paper's
profiling nomenclature: ``sgemm`` (dense linear projection), ``dgl``
(graph gather/scatter), ``cub`` (index sorting), ``elementwise`` (neural
pointwise ops), ``Memcpy`` — plus MEGA's ``band`` kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.memsim.access import (
    AccessTrace,
    MemoryLayout,
    row_gather_trace,
    sequential_trace,
)
from repro.memsim.device import GPUDevice, KernelStats

FLOAT_BYTES = 4


def sgemm(device: GPUDevice, layout: MemoryLayout, m: int, n: int, k: int,
          name: str = "sgemm") -> KernelStats:
    """Dense matrix multiply (m×k)·(k×n): compute-bound, streaming access."""
    flops = 2.0 * m * n * k
    a = sequential_trace(layout.base("workspace"), m * k * FLOAT_BYTES)
    b = sequential_trace(layout.base("weights"), k * n * FLOAT_BYTES)
    out = sequential_trace(layout.base("workspace"), m * n * FLOAT_BYTES)
    loads = AccessTrace.concatenate([a, b])
    return device.run_kernel(name, flops, loads=loads, stores=out,
                             efficiency=device.spec.gemm_efficiency,
                             parallel_items=m * n)


def gather_rows(device: GPUDevice, layout: MemoryLayout, region: str,
                row_indices: np.ndarray, dim: int,
                name: str = "dgl::gather") -> KernelStats:
    """Fetch feature rows by index (neighbour aggregation's read side).

    The locality of ``row_indices`` — the actual CSR or band order —
    determines the cache behaviour, hence the kernel's efficiency.
    """
    row_bytes = dim * FLOAT_BYTES
    loads = row_gather_trace(layout.base(region), np.asarray(row_indices),
                             row_bytes)
    stores = sequential_trace(layout.base("workspace"),
                              len(row_indices) * row_bytes)
    flops = float(len(row_indices) * dim)  # copy/accumulate cost
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             parallel_items=len(row_indices) * dim)


def scatter_add_rows(device: GPUDevice, layout: MemoryLayout, region: str,
                     row_indices: np.ndarray, dim: int,
                     name: str = "dgl::scatter") -> KernelStats:
    """Accumulate message rows into indexed destinations (atomic adds)."""
    row_bytes = dim * FLOAT_BYTES
    loads = sequential_trace(layout.base("workspace"),
                             len(row_indices) * row_bytes)
    stores = row_gather_trace(layout.base(region), np.asarray(row_indices),
                              row_bytes)
    flops = float(len(row_indices) * dim)
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             atomic_stores=True,
                             parallel_items=len(row_indices) * dim)


def cub_sort(device: GPUDevice, layout: MemoryLayout, num_keys: int,
             name: str = "cub::sort") -> KernelStats:
    """Radix sort of edge indices (DGL's neighbour-ordering step)."""
    key_bytes = 8
    passes = 4
    nbytes = num_keys * key_bytes
    loads = AccessTrace.concatenate(
        [sequential_trace(layout.base("workspace"), nbytes)] * passes)
    stores = AccessTrace.concatenate(
        [sequential_trace(layout.base("workspace"), nbytes)] * passes)
    flops = float(passes * num_keys * 8)  # digit extraction + histogram
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             parallel_items=num_keys)


def elementwise(device: GPUDevice, layout: MemoryLayout, rows: int, dim: int,
                flops_per_element: float = 4.0,
                name: str = "elementwise") -> KernelStats:
    """Pointwise neural op (activation, residual, norm) over rows×dim."""
    nbytes = rows * dim * FLOAT_BYTES
    loads = sequential_trace(layout.base("workspace"), nbytes)
    stores = sequential_trace(layout.base("workspace"), nbytes)
    flops = float(rows * dim * flops_per_element)
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             parallel_items=rows * dim)


def band_gather(device: GPUDevice, layout: MemoryLayout, region: str,
                length: int, window: int, dim: int,
                name: str = "mega::band") -> KernelStats:
    """MEGA's diagonal gather: each position reads its 2ω+1 band rows.

    The trace enumerates every band access; the overlap between
    consecutive windows is real reuse the simulated L2 discovers, which
    is exactly how the regularised layout earns its speedup.
    """
    row_bytes = dim * FLOAT_BYTES
    positions = np.arange(length, dtype=np.int64)
    rows = positions[:, None] + np.arange(-window, window + 1, dtype=np.int64)
    rows = np.clip(rows, 0, max(length - 1, 0)).reshape(-1)
    loads = row_gather_trace(layout.base(region), rows, row_bytes)
    stores = sequential_trace(layout.base("workspace"), length * row_bytes)
    flops = float(length * (2 * window + 1) * dim)
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             parallel_items=length * dim)


def band_scatter(device: GPUDevice, layout: MemoryLayout, region: str,
                 length: int, dim: int,
                 name: str = "mega::reduce") -> KernelStats:
    """Sequential per-position write-back of band aggregation results."""
    row_bytes = dim * FLOAT_BYTES
    loads = sequential_trace(layout.base("workspace"), length * row_bytes)
    stores = sequential_trace(layout.base(region), length * row_bytes)
    flops = float(length * dim)
    return device.run_kernel(name, flops, loads=loads, stores=stores,
                             parallel_items=length * dim)


def memcpy(device: GPUDevice, nbytes: float,
           name: str = "Memcpy") -> KernelStats:
    """Host-to-device (or back) PCIe transfer."""
    return device.memcpy(nbytes, name=name)
