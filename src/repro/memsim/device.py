"""Analytical GPU device model.

The paper's measurements come from a GeForce GTX 1080 profiled with
nvprof.  :class:`DeviceSpec` captures the handful of device parameters
those measurements depend on — SM throughput, DRAM bandwidth, L2 size,
transaction (sector) granularity, and launch overhead — and
:class:`GPUDevice` turns kernel launches into nvprof-like statistics
using a roofline timing model plus a trace-driven L2 cache.

The goal is *relative* fidelity: sequential streams must beat scattered
row gathers by roughly the margin real hardware shows, dense GEMM must
look compute-bound, and kernel time must be max(compute, memory) plus a
fixed launch cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.memsim.cache import LRUCache
from repro.memsim.access import AccessTrace


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of the simulated accelerator."""

    name: str = "GTX1080-sim"
    num_sms: int = 20
    sm_clock_ghz: float = 1.6
    flops_per_cycle_per_sm: float = 256.0   # 128 FMA units x 2 flops
    dram_bandwidth_gbs: float = 320.0
    l2_bytes: int = 2 * 1024 * 1024
    l2_associativity: int = 16
    sector_bytes: int = 128                 # transaction/line granularity
    dram_latency_ns: float = 400.0
    memory_concurrency: int = 2048          # in-flight lines device-wide
    kernel_launch_us: float = 4.0
    pcie_bandwidth_gbs: float = 12.0        # PCIe 3.0 x16 effective
    gemm_efficiency: float = 0.80           # achievable fraction of peak
    atomic_penalty: float = 1.5             # scatter-atomic slowdown factor
    row_activation_lines: float = 6.0       # DRAM activation cost, in line-times
    l2_bandwidth_gbs: float = 1000.0        # L2-to-SM throughput
    l2_gap_penalty: float = 3.0             # transaction overhead, in line-times
    scatter_gap_ns: float = 250.0           # stall per discontiguous run
    scatter_parallelism: float = 32.0       # runs overlapped by warp scheduling
    atomic_throughput_gops: float = 48.0    # device-wide atomic adds per second
    saturation_items: float = 32768.0       # parallel items to fill the device

    @property
    def l2_bandwidth(self) -> float:
        return self.l2_bandwidth_gbs * 1e9

    @property
    def peak_flops(self) -> float:
        return self.num_sms * self.sm_clock_ghz * 1e9 * self.flops_per_cycle_per_sm

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_bandwidth_gbs * 1e9

    @property
    def pcie_bandwidth(self) -> float:
        return self.pcie_bandwidth_gbs * 1e9


GTX_1080 = DeviceSpec()

# Presets for sensitivity studies: the paper's argument is that MEGA's
# benefit comes from regularising memory access, so it should persist —
# but shrink — on devices with more cache and bandwidth headroom.
V100_LIKE = DeviceSpec(
    name="V100-sim", num_sms=80, sm_clock_ghz=1.4,
    dram_bandwidth_gbs=900.0, l2_bytes=6 * 1024 * 1024,
    l2_bandwidth_gbs=2500.0, pcie_bandwidth_gbs=14.0,
    atomic_throughput_gops=120.0, memory_concurrency=4096,
    saturation_items=163840.0)

A100_LIKE = DeviceSpec(
    name="A100-sim", num_sms=108, sm_clock_ghz=1.4,
    dram_bandwidth_gbs=1555.0, l2_bytes=40 * 1024 * 1024,
    l2_bandwidth_gbs=5000.0, pcie_bandwidth_gbs=25.0,
    atomic_throughput_gops=250.0, memory_concurrency=8192,
    saturation_items=221184.0)

OLD_MOBILE = DeviceSpec(
    name="mobile-sim", num_sms=8, sm_clock_ghz=1.0,
    dram_bandwidth_gbs=80.0, l2_bytes=512 * 1024,
    l2_bandwidth_gbs=250.0, pcie_bandwidth_gbs=4.0,
    atomic_throughput_gops=12.0, memory_concurrency=512,
    saturation_items=8192.0)

DEVICE_PRESETS = {
    "gtx1080": GTX_1080,
    "v100": V100_LIKE,
    "a100": A100_LIKE,
    "mobile": OLD_MOBILE,
}


@dataclass
class KernelStats:
    """nvprof-like statistics for one kernel invocation."""

    name: str
    time_s: float
    flops: float
    load_transactions: int
    store_transactions: int
    l2_hits: int
    l2_misses: int
    dram_bytes: float
    sm_efficiency: float
    memory_stall_pct: float

    @property
    def total_transactions(self) -> int:
        return self.load_transactions + self.store_transactions


class GPUDevice:
    """Executes :class:`~repro.memsim.access.AccessTrace`-bearing kernels.

    The L2 cache persists across kernel launches (as on hardware) and can
    be reset between experiments with :meth:`reset`.
    """

    def __init__(self, spec: DeviceSpec = GTX_1080):
        if spec.sector_bytes <= 0 or spec.l2_bytes <= 0:
            raise SimulationError("device spec must have positive cache sizes")
        self.spec = spec
        self.l2 = LRUCache(spec.l2_bytes, spec.sector_bytes, spec.l2_associativity)

    def reset(self) -> None:
        """Cold-start the L2 (between unrelated experiments)."""
        self.l2 = LRUCache(self.spec.l2_bytes, self.spec.sector_bytes,
                           self.spec.l2_associativity)

    # ------------------------------------------------------------------
    def _trace_time(self, trace: Optional[AccessTrace],
                    is_store: bool) -> Dict[str, float]:
        """Run one trace through the L2 and price its DRAM traffic.

        Effective DRAM bandwidth follows a row-buffer model: a maximal
        run of consecutive missed lines pays one activation (worth
        ``row_activation_lines`` line-transfer times), so long streams
        approach peak bandwidth and isolated misses get a small fraction
        of it.
        """
        spec = self.spec
        if trace is None or trace.num_accesses == 0:
            return {"tx": 0, "hits": 0, "misses": 0, "useful": 0.0,
                    "dram": 0.0, "time": 0.0}
        sectors = trace.sector_addresses(spec.sector_bytes)
        stats = self.l2.access_trace(sectors)
        hits, misses = stats["hits"], stats["misses"]
        effective_tx = max(len(sectors) - stats["repeat_all"], 0)
        tx_runs = max(effective_tx - stats["seq_all"], 1)
        tx_avg_run = effective_tx / tx_runs if effective_tx else 1.0
        if is_store:
            # Every stored byte eventually reaches DRAM as writeback;
            # contiguous dirty lines stream out at row-buffer speed, so
            # the store stream's own contiguity sets the DRAM efficiency.
            dram_bytes = len(sectors) * spec.sector_bytes
            run_for_dram = tx_avg_run
        else:
            dram_bytes = misses * spec.sector_bytes
            miss_runs = max(misses - stats["seq_misses"], 1)
            run_for_dram = misses / miss_runs if misses else 1.0
        bw_scale = run_for_dram / (run_for_dram + spec.row_activation_lines)
        t_dram = dram_bytes / (spec.dram_bandwidth * max(bw_scale, 1e-3))
        t_latency = (misses / max(spec.memory_concurrency, 1)) \
            * spec.dram_latency_ns * 1e-9
        # Every transaction (hit or miss) crosses the L2 interconnect;
        # scattered streams pay a per-transaction gap, streams do not.
        l2_eff = tx_avg_run / (tx_avg_run + spec.l2_gap_penalty)
        t_l2 = (effective_tx * spec.sector_bytes
                / (spec.l2_bandwidth * max(l2_eff, 1e-3)))
        # Divergence stalls: each discontiguous run exposes latency the
        # warp scheduler can only partially overlap.  Streams have ~one
        # run and pay nothing; scattered row fetches pay per row.
        t_gap = tx_runs * spec.scatter_gap_ns * 1e-9 / spec.scatter_parallelism
        return {"tx": len(sectors), "hits": hits, "misses": misses,
                "useful": float(trace.total_bytes),
                "dram": float(dram_bytes),
                "time": max(t_dram, t_latency, t_l2) + t_gap}

    def run_kernel(self, name: str, flops: float,
                   loads: Optional[AccessTrace] = None,
                   stores: Optional[AccessTrace] = None,
                   atomic_stores: bool = False,
                   efficiency: Optional[float] = None,
                   imbalance: float = 1.0,
                   parallel_items: Optional[float] = None) -> KernelStats:
        """Time one kernel from its compute volume and memory traces.

        Roofline timing with refinements profiled GNN kernels need:

        * a DRAM row-buffer model scales effective bandwidth with the
          run length of missed lines, so scattered gathers pay for every
          activation while streams run at peak;
        * ``imbalance`` (>= 1) stretches the busy time of kernels whose
          per-warp work is skewed (neighbour aggregation over power-law
          degrees — the paper's "significant workload imbalance");
        * SM efficiency is the *ideal* kernel time (same useful bytes,
          perfectly coalesced, balanced) over the achieved time, which
          reproduces how sgemm/cub/dgl separate in nvprof.
        """
        spec = self.spec
        lstat = self._trace_time(loads, is_store=False)
        sstat = self._trace_time(stores, is_store=True)

        # Occupancy: a kernel with too little parallel work cannot fill
        # the device, stretching its compute phase (small cub sorts, tiny
        # readout GEMMs).  ``parallel_items=None`` assumes saturation.
        if parallel_items is None:
            utilization = 1.0
        else:
            utilization = float(np.clip(
                parallel_items / spec.saturation_items, 0.02, 1.0))

        eff = efficiency if efficiency is not None else 1.0
        t_compute_full = flops / (spec.peak_flops * eff) if flops > 0 else 0.0
        t_compute = t_compute_full / utilization
        t_memory = lstat["time"] + sstat["time"]
        if atomic_stores:
            # Atomic read-modify-writes are throughput-limited per element
            # and serialise further under destination conflicts.
            atomic_ops = sstat["useful"] / 4.0
            t_memory += atomic_ops / (spec.atomic_throughput_gops * 1e9)
            t_memory *= spec.atomic_penalty
        busy = max(t_compute, t_memory) * max(imbalance, 1.0)
        launch = spec.kernel_launch_us * 1e-6
        time_s = busy + launch

        useful_bytes = lstat["useful"] + sstat["useful"]
        # Ideal execution: saturated SMs, perfectly coalesced memory.
        t_ideal = max(t_compute_full, useful_bytes / spec.dram_bandwidth)
        t_ideal = min(t_ideal, busy) if busy > 0 else 0.0
        t_ideal *= utilization  # unfillable SMs count as inactive cycles
        # nvprof's sm_efficiency measures cycles *during* kernel
        # execution, so launch overhead dilutes wall time but not the
        # efficiency metric.
        if busy <= 0 or t_ideal <= 0:
            sm_eff = 0.0
            stall = 1.0 if t_memory > 0 else 0.0
        else:
            sm_eff = t_ideal / busy
            stall = max(0.0, busy - t_ideal) / busy
        return KernelStats(
            name=name, time_s=time_s, flops=flops,
            load_transactions=int(lstat["tx"]), store_transactions=int(sstat["tx"]),
            l2_hits=int(lstat["hits"] + sstat["hits"]),
            l2_misses=int(lstat["misses"] + sstat["misses"]),
            dram_bytes=lstat["dram"] + sstat["dram"],
            sm_efficiency=float(np.clip(sm_eff, 0.0, 1.0)),
            memory_stall_pct=float(np.clip(stall, 0.0, 1.0)))

    def memcpy(self, nbytes: float, name: str = "Memcpy") -> KernelStats:
        """Host<->device copy over PCIe."""
        time_s = nbytes / self.spec.pcie_bandwidth + self.spec.kernel_launch_us * 1e-6
        return KernelStats(
            name=name, time_s=time_s, flops=0.0,
            load_transactions=0, store_transactions=0,
            l2_hits=0, l2_misses=0, dram_bytes=float(nbytes),
            sm_efficiency=0.0, memory_stall_pct=1.0)
