"""Set-associative LRU cache model (the simulated L2).

Addresses are byte addresses; the cache operates on aligned lines of
``line_bytes``.  ``access_many`` is the hot path: it walks a numpy array
of sector addresses through per-set LRU state kept in ordinary dicts,
which is exact and fast enough for the trace sizes the profiler feeds it
(hundreds of thousands of sectors).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError


class LRUCache:
    """Exact set-associative cache with least-recently-used replacement."""

    def __init__(self, size_bytes: int, line_bytes: int, associativity: int):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise SimulationError("cache dimensions must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines < associativity:
            raise SimulationError(
                f"cache of {size_bytes} B cannot hold one {associativity}-way set "
                f"of {line_bytes} B lines")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = max(1, num_lines // associativity)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        s = self._sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.associativity:
            s.popitem(last=False)
        s[line] = True
        return False

    def access_many(self, addresses: np.ndarray) -> Tuple[int, int]:
        """Touch many byte addresses; returns (hits, misses) for this batch."""
        stats = self.access_trace(addresses)
        return stats["hits"], stats["misses"]

    def access_trace(self, addresses: np.ndarray) -> dict:
        """Touch many byte addresses and gather stream statistics.

        Returns a dict with:

        * ``hits`` / ``misses`` — L2 outcomes;
        * ``seq_misses`` — misses whose line directly follows the
          previous missed line (DRAM row-buffer streaming);
        * ``seq_all`` — accesses whose line follows the previous access's
          line (interconnect streaming efficiency, hits included);
        * ``repeat_all`` — accesses to the same line as the previous one
          (coalesced within a transaction, effectively free).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        lines = addresses // self.line_bytes
        # Stream statistics are order-properties of the line sequence and
        # can be computed vectorised.
        if len(lines) > 1:
            delta = np.diff(lines)
            seq_all = int((delta == 1).sum())
            repeat_all = int((delta == 0).sum())
        else:
            seq_all = repeat_all = 0
        sets = lines % self.num_sets
        hits = misses = seq_misses = 0
        prev_miss_line = -2
        sets_list = self._sets
        assoc = self.associativity
        for line, set_idx in zip(lines.tolist(), sets.tolist()):
            s = sets_list[set_idx]
            if line in s:
                s.move_to_end(line)
                hits += 1
            else:
                misses += 1
                if line == prev_miss_line + 1:
                    seq_misses += 1
                prev_miss_line = line
                if len(s) >= assoc:
                    s.popitem(last=False)
                s[line] = True
        self.hits += hits
        self.misses += misses
        return {"hits": hits, "misses": misses, "seq_misses": seq_misses,
                "seq_all": seq_all, "repeat_all": repeat_all}

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def contains(self, address: int) -> bool:
        line = address // self.line_bytes
        return line in self._sets[line % self.num_sets]

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
