"""Node-reordering baselines.

GNNAdvisor (cited in Section II-B2) improves locality by renumbering
vertices so densely connected vertices get consecutive ids.  These
policies are the comparison points for MEGA's path representation in the
ablation benchmarks: a *relabeling* changes which ids are near each
other, whereas MEGA changes the *schedule itself*.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_order, dfs_order, pseudo_peripheral_vertex


def identity_order(graph: Graph) -> np.ndarray:
    return np.arange(graph.num_nodes, dtype=np.int64)


def degree_sort_order(graph: Graph, descending: bool = True) -> np.ndarray:
    """Order vertices by degree (hubs first)."""
    deg = graph.degrees()
    key = -deg if descending else deg
    return np.argsort(key, kind="stable").astype(np.int64)


def bfs_reorder(graph: Graph) -> np.ndarray:
    """BFS numbering from a pseudo-peripheral vertex (locality heuristic)."""
    start = pseudo_peripheral_vertex(graph) if graph.num_nodes else 0
    return bfs_order(graph, start)


def dfs_reorder(graph: Graph) -> np.ndarray:
    start = pseudo_peripheral_vertex(graph) if graph.num_nodes else 0
    return dfs_order(graph, start)


def rcm_order(graph: Graph) -> np.ndarray:
    """Reverse Cuthill–McKee: the classic bandwidth-minimising ordering."""
    adj = graph.adjacency_lists()
    deg = graph.degrees()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order = []
    seeds = sorted(range(graph.num_nodes), key=lambda v: deg[v])
    for seed in seeds:
        if visited[seed]:
            continue
        queue = [seed]
        visited[seed] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = [int(w) for w in adj[v] if not visited[w]]
            nbrs.sort(key=lambda w: deg[w])
            for w in nbrs:
                visited[w] = True
            queue.extend(nbrs)
    return np.asarray(order[::-1], dtype=np.int64)


def apply_order(graph: Graph, order: np.ndarray) -> Graph:
    """Relabel vertices so old vertex ``order[i]`` becomes new vertex ``i``.

    Node features are permuted accordingly; edge records keep their
    position (only endpoints are renamed), so edge features are unchanged.
    """
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(graph.num_nodes)):
        raise GraphError("order must be a permutation of all vertices")
    inverse = np.empty_like(order)
    inverse[order] = np.arange(graph.num_nodes)
    node_feats = None
    if graph.node_features is not None:
        node_feats = np.asarray(graph.node_features)[order]
    return Graph(
        graph.num_nodes, inverse[graph.src], inverse[graph.dst],
        undirected=graph.undirected,
        node_features=node_feats,
        edge_features=graph.edge_features,
        label=graph.label)


def bandwidth(graph: Graph) -> int:
    """Adjacency-matrix bandwidth max |src - dst| (locality proxy)."""
    if graph.num_edges == 0:
        return 0
    return int(np.abs(graph.src - graph.dst).max())


def mean_index_distance(graph: Graph) -> float:
    """Average |src - dst| over edges — lower means better locality."""
    if graph.num_edges == 0:
        return 0.0
    return float(np.abs(graph.src - graph.dst).mean())


def community_order(graph: Graph, max_rounds: int = 10,
                    seed: int = 0) -> np.ndarray:
    """Rabbit-order-style community clustering by label propagation.

    Runs synchronous label propagation until stable (or ``max_rounds``),
    then numbers vertices community-by-community (largest first),
    ordered by degree inside each community — co-locating densely
    connected vertices like GNNAdvisor's reordering pass.
    """
    n = graph.num_nodes
    if n == 0:
        return np.array([], dtype=np.int64)
    rng = np.random.default_rng(seed)
    adj = graph.adjacency_lists()
    labels = np.arange(n, dtype=np.int64)
    order_scan = np.arange(n)
    for _ in range(max_rounds):
        rng.shuffle(order_scan)
        changed = 0
        for v in order_scan:
            neighbours = adj[v]
            if len(neighbours) == 0:
                continue
            counts: Dict[int, int] = {}
            for w in neighbours:
                lab = int(labels[w])
                counts[lab] = counts.get(lab, 0) + 1
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            if best != labels[v]:
                labels[v] = best
                changed += 1
        if changed == 0:
            break
    deg = graph.degrees()
    sizes: Dict[int, int] = {}
    for lab in labels:
        sizes[int(lab)] = sizes.get(int(lab), 0) + 1
    keys = [(-sizes[int(labels[v])], int(labels[v]), -int(deg[v]), v)
            for v in range(n)]
    return np.array([v for *_, v in sorted(keys)], dtype=np.int64)


REORDER_POLICIES: Dict[str, Callable[[Graph], np.ndarray]] = {
    "identity": identity_order,
    "degree": degree_sort_order,
    "bfs": bfs_reorder,
    "dfs": dfs_reorder,
    "rcm": rcm_order,
    "community": community_order,
}
