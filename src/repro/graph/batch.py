"""Batched graphs: disjoint union of many small graphs.

GNN training on molecular datasets batches dozens of graphs into one
block-diagonal super-graph; node/edge features are concatenated and a
``graph_ids`` vector drives the per-graph readout (segment mean).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


class GraphBatch:
    """Disjoint union of graphs with bookkeeping for readout.

    Attributes
    ----------
    graph:
        The merged :class:`Graph` over ``sum(n_i)`` nodes.
    graph_ids:
        Per-node graph index of shape (total_nodes,).
    edge_graph_ids:
        Per-edge graph index of shape (total_edges,).
    node_offsets:
        Prefix offsets so graph *g* owns nodes
        ``[node_offsets[g], node_offsets[g+1])``.
    labels:
        Per-graph labels stacked into one array (or None).
    """

    def __init__(self, graphs: Sequence[Graph]):
        graphs = list(graphs)
        if not graphs:
            raise GraphError("cannot batch zero graphs")
        undirected = graphs[0].undirected
        if any(g.undirected != undirected for g in graphs):
            raise GraphError("cannot mix directed and undirected graphs")
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        self.node_offsets = np.concatenate([[0], np.cumsum(sizes)])
        total_nodes = int(self.node_offsets[-1])

        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        edge_gid_parts: List[np.ndarray] = []
        for i, g in enumerate(graphs):
            off = self.node_offsets[i]
            src_parts.append(g.src + off)
            dst_parts.append(g.dst + off)
            edge_gid_parts.append(np.full(g.num_edges, i, dtype=np.int64))

        node_feats = _stack_features([g.node_features for g in graphs])
        edge_feats = _stack_features([g.edge_features for g in graphs])

        self.graph = Graph(
            total_nodes,
            np.concatenate(src_parts) if src_parts else np.array([], np.int64),
            np.concatenate(dst_parts) if dst_parts else np.array([], np.int64),
            undirected=undirected,
            node_features=node_feats,
            edge_features=edge_feats)
        self.graph_ids = np.repeat(np.arange(len(graphs)), sizes)
        self.edge_graph_ids = (np.concatenate(edge_gid_parts)
                               if edge_gid_parts else np.array([], np.int64))
        self.num_graphs = len(graphs)
        labels = [g.label for g in graphs]
        self.labels: Optional[np.ndarray] = (
            np.asarray(labels) if all(l is not None for l in labels) else None)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def nodes_of(self, graph_index: int) -> np.ndarray:
        """Node ids belonging to one member graph."""
        if not 0 <= graph_index < self.num_graphs:
            raise GraphError(
                f"graph index {graph_index} out of range [0, {self.num_graphs})")
        lo = self.node_offsets[graph_index]
        hi = self.node_offsets[graph_index + 1]
        return np.arange(lo, hi)

    def __repr__(self) -> str:
        return (f"GraphBatch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")


def _stack_features(parts: List[Optional[np.ndarray]]) -> Optional[np.ndarray]:
    if any(p is None for p in parts):
        return None
    return np.concatenate([np.asarray(p) for p in parts], axis=0)


def make_batches(graphs: Sequence[Graph], batch_size: int,
                 rng: Optional[np.random.Generator] = None,
                 drop_last: bool = False) -> List[GraphBatch]:
    """Split a dataset into GraphBatch objects, optionally shuffled."""
    if batch_size <= 0:
        raise GraphError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(len(graphs))
    if rng is not None:
        rng.shuffle(order)
    batches = []
    for start in range(0, len(graphs), batch_size):
        chunk = order[start:start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        batches.append(GraphBatch([graphs[i] for i in chunk]))
    return batches
