"""Graph partitioners for the distributed-communication analysis (§IV-B6).

Two strategies are compared:

* :func:`edge_cut_partition` — balanced BFS-grown node partition, the
  conventional distributed-GNN layout whose cross-partition edges force
  all-to-all neighbour exchange.
* contiguous *path* partitioning lives in
  :mod:`repro.distributed.path_partition` because it operates on MEGA's
  path representation rather than the raw graph.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


def edge_cut_partition(graph: Graph, k: int,
                       rng: np.random.Generator = None) -> np.ndarray:
    """Assign each vertex a partition id in [0, k) with near-equal sizes.

    BFS-grows each part from a random seed so parts are locally clustered
    (a favourable baseline — random assignment would cut far more edges).
    """
    if k <= 0:
        raise GraphError(f"k must be positive, got {k}")
    if k > graph.num_nodes:
        raise GraphError(f"cannot split {graph.num_nodes} nodes into {k} parts")
    rng = rng or np.random.default_rng(0)
    target = int(np.ceil(graph.num_nodes / k))
    adj = graph.adjacency_lists()
    assignment = np.full(graph.num_nodes, -1, dtype=np.int64)
    unassigned = set(range(graph.num_nodes))
    for part in range(k):
        if not unassigned:
            break
        seed = int(rng.choice(sorted(unassigned)))
        queue = deque([seed])
        size = 0
        while queue and size < target:
            v = queue.popleft()
            if assignment[v] != -1:
                continue
            assignment[v] = part
            unassigned.discard(v)
            size += 1
            for w in adj[v]:
                if assignment[w] == -1:
                    queue.append(int(w))
        # BFS exhausted its component before filling the part: steal the
        # lowest-id nodes (set.pop() order would be interpreter-defined).
        while size < target and unassigned:
            v = min(unassigned)
            unassigned.discard(v)
            assignment[v] = part
            size += 1
    # Any stragglers go to the last part.
    assignment[assignment == -1] = k - 1
    return assignment


def cut_edges(graph: Graph, assignment: np.ndarray) -> int:
    """Count edges whose endpoints live in different partitions."""
    assignment = np.asarray(assignment)
    return int((assignment[graph.src] != assignment[graph.dst]).sum())


def partition_sizes(assignment: np.ndarray, k: int) -> np.ndarray:
    return np.bincount(np.asarray(assignment), minlength=k)


def replication_factor(graph: Graph, assignment: np.ndarray, k: int) -> float:
    """Average number of partitions each vertex must be visible in.

    A vertex appears in its own partition plus every partition holding a
    neighbour — the classic vertex-replication metric for edge-cut
    layouts (Bourse et al., cited by the paper).
    """
    assignment = np.asarray(assignment)
    seen: List[set] = [set() for _ in range(graph.num_nodes)]
    for s, d in zip(graph.src, graph.dst):
        seen[s].add(int(assignment[d]))
        seen[d].add(int(assignment[s]))
    total = sum(len(seen[v] | {int(assignment[v])}) for v in range(graph.num_nodes))
    return total / max(graph.num_nodes, 1)
