"""Compressed sparse row adjacency, the storage format graph kernels index.

The DGL-style baseline sorts edges by destination (the paper's ``cub``
sort) and walks a CSR row per target node; the offsets/indices arrays
here are what those kernels read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class CSRAdjacency:
    """CSR arrays: ``indices[offsets[v]:offsets[v+1]]`` are v's neighbours.

    ``edge_ids`` maps each CSR slot back to the originating edge record so
    edge features can be fetched alongside neighbour embeddings.
    """

    num_nodes: int
    offsets: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.offsets.shape != (self.num_nodes + 1,):
            raise GraphError(
                f"offsets must have length num_nodes+1="
                f"{self.num_nodes + 1}, got {self.offsets.shape}")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.indices):
            raise GraphError("offsets must start at 0 and end at nnz")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")

    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    def row(self, v: int) -> np.ndarray:
        return self.indices[self.offsets[v]:self.offsets[v + 1]]

    def row_edges(self, v: int) -> np.ndarray:
        return self.edge_ids[self.offsets[v]:self.offsets[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)


def build_csr(graph: Graph, by: str = "dst") -> CSRAdjacency:
    """Build CSR over the directed (symmetrised) edge set.

    ``by="dst"`` groups incoming edges per target node — the layout the
    aggregation (gather) kernel iterates.  ``by="src"`` groups outgoing
    edges (the scatter direction).
    """
    if by not in ("src", "dst"):
        raise GraphError(f"by must be 'src' or 'dst', got {by!r}")
    s, d = graph.directed_edges()
    m = graph.num_edges
    # Edge record id for each directed edge (reverse copies share the id).
    if graph.undirected:
        loops = graph.src == graph.dst
        ids = np.concatenate([np.arange(m), np.arange(m)[~loops]])
    else:
        ids = np.arange(m)
    key = d if by == "dst" else s
    val = s if by == "dst" else d
    order = np.argsort(key, kind="stable")
    key, val, ids = key[order], val[order], ids[order]
    counts = np.bincount(key, minlength=graph.num_nodes)
    offsets = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRAdjacency(graph.num_nodes, offsets, val, ids)


def csr_to_edges(csr: CSRAdjacency) -> Tuple[np.ndarray, np.ndarray]:
    """Expand CSR back to (row, col) coordinate arrays."""
    rows = np.repeat(np.arange(csr.num_nodes), np.diff(csr.offsets))
    return rows, csr.indices.copy()
