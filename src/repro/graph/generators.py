"""Random-graph generators used by datasets, tests, and benchmarks.

All generators take an explicit ``numpy.random.Generator`` and always
return connected graphs unless stated otherwise (molecular graphs are
connected by construction; Erdős–Rényi draws are patched into one
component so traversal schedules cover every vertex).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph, from_edge_list
from repro.graph.traversal import connected_components


def erdos_renyi(rng: np.random.Generator, num_nodes: int, p: float,
                ensure_connected: bool = True) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    iu, ju = np.triu_indices(num_nodes, k=1)
    mask = rng.random(len(iu)) < p
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    g = from_edge_list(edges, num_nodes=num_nodes)
    if ensure_connected:
        g = _connect_components(rng, g)
    return g


def erdos_renyi_with_sparsity(rng: np.random.Generator, num_nodes: int,
                              sparsity: float) -> Graph:
    """Random graph whose edge count matches a target sparsity ratio.

    Sparsity here follows the paper's definition (Section IV-B1): actual
    edges divided by the complete graph's edge count.  ``sparsity=1``
    returns the complete graph.
    """
    if not 0.0 < sparsity <= 1.0:
        raise GraphError(f"sparsity must be in (0, 1], got {sparsity}")
    full = num_nodes * (num_nodes - 1) // 2
    target_edges = max(num_nodes - 1, int(round(sparsity * full)))
    target_edges = min(target_edges, full)
    iu, ju = np.triu_indices(num_nodes, k=1)
    chosen = rng.choice(full, size=target_edges, replace=False)
    g = from_edge_list(zip(iu[chosen].tolist(), ju[chosen].tolist()),
                       num_nodes=num_nodes)
    return _connect_components(rng, g)


def barabasi_albert(rng: np.random.Generator, num_nodes: int,
                    attach: int = 2) -> Graph:
    """Preferential-attachment graph (skewed, power-law-ish degrees)."""
    if attach < 1 or attach >= num_nodes:
        raise GraphError(f"attach must be in [1, num_nodes), got {attach}")
    edges: List[Tuple[int, int]] = []
    targets = list(range(attach))
    repeated: List[int] = []
    for v in range(attach, num_nodes):
        for t in targets:
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * attach)
        # Sample next targets proportionally to degree.  Fallback pool is
        # sorted: set iteration order must not pick the targets (MEGA002).
        targets = list(rng.choice(repeated, size=attach, replace=False)) \
            if len(set(repeated)) >= attach \
            else sorted(set(repeated))[:attach]
    canon = {(min(a, b), max(a, b)) for a, b in edges}
    return from_edge_list(sorted(canon), num_nodes=num_nodes)


def ring_graph(num_nodes: int) -> Graph:
    """Simple cycle over ``num_nodes`` vertices."""
    if num_nodes < 3:
        raise GraphError(f"a ring needs at least 3 nodes, got {num_nodes}")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return from_edge_list(edges, num_nodes=num_nodes)


def circular_skip_link(num_nodes: int, skip: int) -> Graph:
    """CSL graph: a ring plus chords of fixed skip length.

    This is the construction behind the CSL dataset (Murphy et al.): the
    isomorphism class is determined by ``skip``, making the graphs a
    stress test for expressivity.
    """
    if not 2 <= skip < num_nodes - 1:
        raise GraphError(
            f"skip must be in [2, num_nodes-1), got {skip} for n={num_nodes}")
    edges = {(i, (i + 1) % num_nodes) for i in range(num_nodes)}
    for i in range(num_nodes):
        j = (i + skip) % num_nodes
        edges.add((min(i, j), max(i, j)))
    canon = {(min(a, b), max(a, b)) for a, b in edges}
    return from_edge_list(sorted(canon), num_nodes=num_nodes)


def random_tree(rng: np.random.Generator, num_nodes: int) -> Graph:
    """Uniform random tree via random attachment."""
    edges = [(v, int(rng.integers(0, v))) for v in range(1, num_nodes)]
    return from_edge_list(edges, num_nodes=num_nodes)


def molecular_like(rng: np.random.Generator, num_nodes: int,
                   ring_fraction: float = 0.4) -> Graph:
    """Sparse connected graph shaped like a small molecule.

    Built as a random tree (the molecular skeleton) plus a few extra
    edges closing small rings, giving mean degree ≈ 2–2.5 and low degree
    variance — the regime of ZINC/AQSOL in Tables II/III.
    """
    g = random_tree(rng, num_nodes)
    edges = set(zip(g.src.tolist(), g.dst.tolist()))
    canon = {(min(a, b), max(a, b)) for a, b in edges}
    extra = int(round(ring_fraction * num_nodes * 0.25))
    attempts = 0
    while extra > 0 and attempts < 50 * max(extra, 1):
        attempts += 1
        u = int(rng.integers(0, num_nodes))
        span = int(rng.integers(3, 7))  # ring sizes 3..6 like real molecules
        v = min(num_nodes - 1, u + span)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in canon:
            canon.add(key)
            extra -= 1
    return from_edge_list(sorted(canon), num_nodes=num_nodes)


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D lattice; useful for deterministic traversal tests."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return from_edge_list(edges, num_nodes=rows * cols)


def star_graph(num_leaves: int) -> Graph:
    """Hub-and-spoke graph: the extreme skewed-degree case."""
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return from_edge_list(edges, num_nodes=num_leaves + 1)


def stochastic_block_model(rng: np.random.Generator,
                           block_sizes: List[int],
                           intra_p: float, inter_p: float,
                           ensure_connected: bool = True) -> Graph:
    """SBM: dense blocks, sparse cross-block edges (community structure).

    The regime where locality-aware scheduling shines: most edges live
    inside blocks, so a path that sweeps block by block keeps its band
    full.
    """
    if not block_sizes:
        raise GraphError("need at least one block")
    if not (0 <= inter_p <= 1 and 0 <= intra_p <= 1):
        raise GraphError("probabilities must be in [0, 1]")
    labels = np.concatenate([
        np.full(size, b, dtype=np.int64)
        for b, size in enumerate(block_sizes)])
    n = len(labels)
    iu, ju = np.triu_indices(n, k=1)
    same = labels[iu] == labels[ju]
    prob = np.where(same, intra_p, inter_p)
    keep = rng.random(len(iu)) < prob
    g = from_edge_list(zip(iu[keep].tolist(), ju[keep].tolist()),
                       num_nodes=n)
    if ensure_connected:
        g = _connect_components(rng, g)
    return g


def watts_strogatz(rng: np.random.Generator, num_nodes: int,
                   k: int = 4, rewire_p: float = 0.1) -> Graph:
    """Small-world graph: ring lattice with randomly rewired chords.

    High clustering with short diameters — a hard case for bandwidth-
    style orderings, useful in the reordering ablations.
    """
    if k < 2 or k % 2 != 0 or k >= num_nodes:
        raise GraphError(
            f"k must be even, >= 2 and < num_nodes; got {k} for "
            f"n={num_nodes}")
    if not 0.0 <= rewire_p <= 1.0:
        raise GraphError(f"rewire_p must be in [0, 1], got {rewire_p}")
    edges = set()
    for i in range(num_nodes):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % num_nodes
            edges.add((min(i, j), max(i, j)))
    rewired = set()
    for (a, b) in sorted(edges):
        if rng.random() < rewire_p:
            for _ in range(20):
                c = int(rng.integers(0, num_nodes))
                key = (min(a, c), max(a, c))
                if c != a and key not in edges and key not in rewired:
                    rewired.add(key)
                    break
            else:
                rewired.add((a, b))
        else:
            rewired.add((a, b))
    return from_edge_list(sorted(rewired), num_nodes=num_nodes)


def _connect_components(rng: np.random.Generator, g: Graph) -> Graph:
    """Add one edge per extra component so the graph is connected."""
    comps = connected_components(g)
    if len(comps) <= 1:
        return g
    extra = []
    anchor = comps[0]
    for comp in comps[1:]:
        u = int(rng.choice(anchor))
        v = int(rng.choice(comp))
        extra.append((u, v))
    src = np.concatenate([g.src, np.array([e[0] for e in extra], np.int64)])
    dst = np.concatenate([g.dst, np.array([e[1] for e in extra], np.int64)])
    return Graph(g.num_nodes, src, dst, undirected=g.undirected)
