"""Structural graph metrics (clustering, assortativity, diameter).

Used by the dataset statistics, the edge-importance heuristics, and the
test suite's cross-checks against networkx.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances


def triangle_count(graph: Graph) -> int:
    """Number of triangles in the graph."""
    adjacency = [set(a.tolist()) for a in graph.adjacency_lists()]
    total = 0
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u == v:
            continue
        total += len(adjacency[u] & adjacency[v])
    return total // 3


def clustering_coefficient(graph: Graph, v: Optional[int] = None) -> float:
    """Local clustering of ``v``, or the graph average when ``v`` is None."""
    adjacency = [set(a.tolist()) for a in graph.adjacency_lists()]

    def local(u: int) -> float:
        neigh = adjacency[u] - {u}
        k = len(neigh)
        if k < 2:
            return 0.0
        links = sum(1 for a in neigh for b in adjacency[a]
                    if b in neigh and b > a)
        return 2.0 * links / (k * (k - 1))

    if v is not None:
        if not 0 <= v < graph.num_nodes:
            raise GraphError(f"vertex {v} out of range")
        return local(v)
    if graph.num_nodes == 0:
        return 0.0
    return float(np.mean([local(u) for u in range(graph.num_nodes)]))


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    Positive: hubs link to hubs (assortative); negative: hubs link to
    leaves (disassortative, typical of stars and molecules).
    """
    if graph.num_edges == 0:
        return 0.0
    deg = graph.degrees().astype(float)
    s, d = graph.directed_edges()
    x, y = deg[s], deg[d]
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def diameter(graph: Graph, sample: Optional[int] = None,
             rng: Optional[np.random.Generator] = None) -> int:
    """Longest shortest path within the largest component.

    With ``sample`` set, eccentricities are evaluated from a random
    vertex subset (a lower bound, adequate for statistics).
    """
    if graph.num_nodes == 0:
        raise GraphError("empty graph has no diameter")
    sources = range(graph.num_nodes)
    if sample is not None and sample < graph.num_nodes:
        rng = rng or np.random.default_rng(0)
        sources = rng.choice(graph.num_nodes, size=sample, replace=False)
    best = 0
    for v in sources:
        dist = bfs_distances(graph, int(v))
        best = max(best, int(dist.max()))
    return best


def effective_bandwidth(graph: Graph, quantile: float = 0.9) -> float:
    """Index-distance quantile over edges — robust locality measure."""
    if graph.num_edges == 0:
        return 0.0
    if not 0.0 < quantile <= 1.0:
        raise GraphError(f"quantile must be in (0, 1], got {quantile}")
    gaps = np.abs(graph.src - graph.dst)
    return float(np.quantile(gaps, quantile))
