"""Graph substrate: COO/CSR structures, batching, generators, traversals."""

from repro.graph.graph import Graph, complete_graph, from_edge_list, to_networkx
from repro.graph.csr import CSRAdjacency, build_csr, csr_to_edges
from repro.graph.batch import GraphBatch, make_batches
from repro.graph import generators
from repro.graph import traversal
from repro.graph import reorder
from repro.graph import partition
from repro.graph import metrics

__all__ = [
    "Graph",
    "from_edge_list",
    "complete_graph",
    "to_networkx",
    "CSRAdjacency",
    "build_csr",
    "csr_to_edges",
    "GraphBatch",
    "make_batches",
    "generators",
    "traversal",
    "reorder",
    "partition",
    "metrics",
]
