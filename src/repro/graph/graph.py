"""Core graph data structure (coordinate format).

The paper represents input graphs "in the coordinate format as a list of
vertex pairs" (Section III-B).  :class:`Graph` follows that convention:
``src``/``dst`` index arrays over ``num_nodes`` vertices, plus optional
node/edge feature matrices.  Undirected graphs store each edge once and
expose symmetrised views where needed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


class Graph:
    """A graph in COO format with optional features.

    Parameters
    ----------
    num_nodes:
        Number of vertices ``n``.
    src, dst:
        Edge endpoint index arrays of equal length ``m``.  For undirected
        graphs each edge appears once (in either orientation).
    undirected:
        Whether the edge list should be interpreted symmetrically.
    node_features, edge_features:
        Optional ``(n, d)`` / ``(m, d)`` feature matrices, or 1-D integer
        arrays of categorical ids (as in ZINC/AQSOL atom and bond types).
    """

    def __init__(self, num_nodes: int, src: Sequence[int], dst: Sequence[int],
                 undirected: bool = True,
                 node_features: Optional[np.ndarray] = None,
                 edge_features: Optional[np.ndarray] = None,
                 label: Optional[float] = None):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays of equal length")
        if self.src.size:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= num_nodes:
                raise GraphError(
                    f"edge endpoints out of range [0, {num_nodes}): "
                    f"found [{lo}, {hi}]")
        self.undirected = bool(undirected)
        self.node_features = node_features
        self.edge_features = edge_features
        self.label = label
        self._adjacency: Optional[List[np.ndarray]] = None
        if node_features is not None and len(node_features) != num_nodes:
            raise GraphError(
                f"node_features has {len(node_features)} rows, expected {num_nodes}")
        if edge_features is not None and len(edge_features) != self.num_edges:
            raise GraphError(
                f"edge_features has {len(edge_features)} rows, "
                f"expected {self.num_edges}")

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of stored edge records (each undirected edge counted once)."""
        return int(self.src.size)

    @property
    def sparsity(self) -> float:
        """Edges / edges-of-complete-graph, as defined in Section IV-B1."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        full = n * (n - 1) / 2.0 if self.undirected else n * (n - 1)
        return self.num_edges / full

    def degrees(self) -> np.ndarray:
        """Vertex degrees (undirected: both endpoints count)."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, self.src, 1)
        if self.undirected:
            np.add.at(deg, self.dst, 1)
            # Self loops were counted twice.
            loops = self.src == self.dst
            if loops.any():
                np.add.at(deg, self.src[loops], -1)
        else:
            # For directed graphs report out-degree + in-degree.
            np.add.at(deg, self.dst, 1)
        return deg

    def directed_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (src, dst) with both orientations for undirected graphs.

        This is the edge set message passing actually iterates over: an
        undirected edge produces two messages, one per direction (the
        redundancy MEGA's symmetric diagonal layout later removes).
        """
        if not self.undirected:
            return self.src, self.dst
        loops = self.src == self.dst
        rev_src = self.dst[~loops]
        rev_dst = self.src[~loops]
        return (np.concatenate([self.src, rev_src]),
                np.concatenate([self.dst, rev_dst]))

    def adjacency_lists(self) -> List[np.ndarray]:
        """Neighbour lists per vertex (cached, sorted ascending)."""
        if self._adjacency is None:
            s, d = self.directed_edges()
            order = np.argsort(s, kind="stable")
            s, d = s[order], d[order]
            starts = np.searchsorted(s, np.arange(self.num_nodes))
            ends = np.searchsorted(s, np.arange(self.num_nodes), side="right")
            self._adjacency = [np.sort(d[a:b]) for a, b in zip(starts, ends)]
        return self._adjacency

    def neighbors(self, v: int) -> np.ndarray:
        if not 0 <= v < self.num_nodes:
            raise GraphError(f"vertex {v} out of range [0, {self.num_nodes})")
        return self.adjacency_lists()[v]

    def edge_set(self) -> set:
        """Set of canonical (min, max) pairs for undirected membership tests."""
        if self.undirected:
            return {(min(s, d), max(s, d)) for s, d in zip(self.src, self.dst)}
        return set(zip(self.src.tolist(), self.dst.tolist()))

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.adjacency_lists()
        if not 0 <= u < self.num_nodes:
            return False
        idx = np.searchsorted(nbrs[u], v)
        return idx < len(nbrs[u]) and nbrs[u][idx] == v

    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> np.ndarray:
        """Dense 0/1 adjacency matrix (small graphs only)."""
        mat = np.zeros((self.num_nodes, self.num_nodes), dtype=np.int8)
        s, d = self.directed_edges()
        mat[s, d] = 1
        return mat

    def copy(self) -> "Graph":
        return Graph(
            self.num_nodes, self.src.copy(), self.dst.copy(),
            undirected=self.undirected,
            node_features=None if self.node_features is None
            else np.array(self.node_features),
            edge_features=None if self.edge_features is None
            else np.array(self.edge_features),
            label=self.label)

    def __repr__(self) -> str:
        kind = "undirected" if self.undirected else "directed"
        return (f"Graph(n={self.num_nodes}, m={self.num_edges}, {kind}, "
                f"sparsity={self.sparsity:.3f})")


def from_edge_list(edges: Iterable[Tuple[int, int]], num_nodes: Optional[int] = None,
                   undirected: bool = True, **kwargs) -> Graph:
    """Build a :class:`Graph` from an iterable of (src, dst) pairs."""
    edges = list(edges)
    if edges:
        src, dst = zip(*edges)
    else:
        src, dst = (), ()
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return Graph(num_nodes, src, dst, undirected=undirected, **kwargs)


def to_networkx(graph: Graph):
    """Convert to a networkx graph (used for cross-validation in tests)."""
    import networkx as nx

    g = nx.Graph() if graph.undirected else nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(zip(graph.src.tolist(), graph.dst.tolist()))
    return g


def complete_graph(num_nodes: int) -> Graph:
    """Fully connected graph (the global-attention comparator of Fig. 1)."""
    idx = np.arange(num_nodes)
    src, dst = np.meshgrid(idx, idx, indexing="ij")
    mask = src < dst
    return Graph(num_nodes, src[mask], dst[mask], undirected=True)
