"""Classic graph traversals (BFS/DFS/components/eccentricity).

These support the MEGA scheduler (which needs connectivity facts), the
reordering baselines, and the test suite's cross-checks.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


def bfs_order(graph: Graph, start: int = 0) -> np.ndarray:
    """Breadth-first visit order from ``start`` (unreached nodes appended)."""
    _check_start(graph, start)
    adj = graph.adjacency_lists()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order: List[int] = []
    for seed in [start] + [v for v in range(graph.num_nodes) if v != start]:
        if visited[seed]:
            continue
        queue = deque([seed])
        visited[seed] = True
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in adj[v]:
                if not visited[w]:
                    visited[w] = True
                    queue.append(int(w))
    return np.asarray(order, dtype=np.int64)


def dfs_order(graph: Graph, start: int = 0) -> np.ndarray:
    """Iterative depth-first visit order from ``start``."""
    _check_start(graph, start)
    adj = graph.adjacency_lists()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order: List[int] = []
    for seed in [start] + [v for v in range(graph.num_nodes) if v != start]:
        if visited[seed]:
            continue
        stack = [seed]
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order.append(v)
            # Push in reverse so low-id neighbours are visited first.
            for w in adj[v][::-1]:
                if not visited[w]:
                    stack.append(int(w))
    return np.asarray(order, dtype=np.int64)


def connected_components(graph: Graph) -> List[np.ndarray]:
    """Vertex sets of connected components, largest-seed first."""
    adj = graph.adjacency_lists()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    components: List[np.ndarray] = []
    for seed in range(graph.num_nodes):
        if visited[seed]:
            continue
        queue = deque([seed])
        visited[seed] = True
        members = [seed]
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if not visited[w]:
                    visited[w] = True
                    members.append(int(w))
                    queue.append(int(w))
        components.append(np.asarray(members, dtype=np.int64))
    return components


def is_connected(graph: Graph) -> bool:
    """True when the graph has at most one connected component.

    The empty graph has zero components and is vacuously connected, so
    a single comparison covers it — no special case needed.
    """
    return len(connected_components(graph)) <= 1


def bfs_distances(graph: Graph, start: int) -> np.ndarray:
    """Hop distances from ``start``; unreachable vertices get -1."""
    _check_start(graph, start)
    adj = graph.adjacency_lists()
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[start] = 0
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(int(w))
    return dist


def eccentricity(graph: Graph, v: int) -> int:
    """Longest shortest-path distance from ``v`` within its component."""
    dist = bfs_distances(graph, v)
    return int(dist.max())


def pseudo_peripheral_vertex(graph: Graph) -> int:
    """Vertex far from the graph centre (good RCM / traversal start)."""
    if graph.num_nodes == 0:
        raise GraphError("empty graph has no vertices")
    v = 0
    ecc = -1
    for _ in range(4):  # a few sweeps converge in practice
        dist = bfs_distances(graph, v)
        far = int(dist.argmax())
        if dist[far] <= ecc:
            break
        ecc = int(dist[far])
        v = far
    return v


def _check_start(graph: Graph, start: int) -> None:
    if graph.num_nodes == 0:
        raise GraphError("cannot traverse an empty graph")
    if not 0 <= start < graph.num_nodes:
        raise GraphError(
            f"start vertex {start} out of range [0, {graph.num_nodes})")
