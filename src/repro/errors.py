"""Exception hierarchy for the MEGA reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError):
    """Raised when tensor or graph shapes are inconsistent."""


class GraphError(ReproError):
    """Raised on malformed graph structures (bad indices, empty sets, ...)."""


class ScheduleError(ReproError):
    """Raised when a traversal schedule violates its invariants."""


class ConfigError(ReproError):
    """Raised on invalid configuration values."""


class SimulationError(ReproError):
    """Raised by the GPU memory simulator on invalid traces or device specs."""


class CheckpointError(ConfigError):
    """Raised on unreadable, torn, or key-mismatched checkpoint archives."""


class TransientError(ReproError):
    """A retryable failure (crashed worker, flaky I/O); a retry may succeed.

    The retry helpers in :mod:`repro.resilience` treat this class (and
    ``OSError``) as the signal that re-attempting the operation is
    meaningful; every other exception propagates immediately.
    """


class FaultInjectionError(TransientError):
    """A deterministic fault raised by a :class:`repro.resilience.FaultPlan`."""


class DivergenceError(ReproError):
    """Training produced a non-finite loss and no checkpoint could absorb it."""


class ServeError(ReproError):
    """Raised by the inference-serving subsystem on invalid state or specs."""


class BenchError(ReproError):
    """Raised by the benchmark harness on malformed ledgers or bad compares.

    Covers unreadable/invalid ``BENCH_*.json`` files, schema-version or
    area mismatches between baseline and candidate, and unknown
    workload/area names.  A *regression* is not an error: ``compare``
    reports it through its exit code (1), never by raising.
    """


class ClusterError(ServeError):
    """Raised by the sharded serving cluster (``repro.cluster``).

    Covers invalid cluster configuration, routing against an empty
    replica set, and the per-request failure surface: a request whose
    retry budget is exhausted — by queue-full rejections or replica
    crashes — is reported through a :class:`ClusterError`, never
    silently dropped.
    """


class StreamError(ServeError):
    """Raised by the dynamic-graph streaming layer (``repro.stream``).

    Covers unknown named graphs, malformed delta batches, invalid
    repair policies, and divergence between a repaired schedule's edge
    set and the applied graph — the invariant the versioned-key
    invalidation protocol depends on.
    """


class QueueFullError(ServeError):
    """Admission rejected because the request queue is at capacity.

    Carries ``retry_after_s``, the server's deterministic hint for when
    capacity is expected to free; clients feed it into a
    :class:`repro.resilience.RetryPolicy` backoff instead of hammering
    the queue.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s
