"""Exception hierarchy for the MEGA reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError):
    """Raised when tensor or graph shapes are inconsistent."""


class GraphError(ReproError):
    """Raised on malformed graph structures (bad indices, empty sets, ...)."""


class ScheduleError(ReproError):
    """Raised when a traversal schedule violates its invariants."""


class ConfigError(ReproError):
    """Raised on invalid configuration values."""


class SimulationError(ReproError):
    """Raised by the GPU memory simulator on invalid traces or device specs."""
