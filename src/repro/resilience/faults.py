"""Deterministic, seeded fault injection for every recovery path.

Fault tolerance that cannot be exercised is a comment, not a feature.
A :class:`FaultPlan` makes every failure mode in this repo *drivable
from a test*: worker crashes in the preprocessing pool, corrupted cache
entries, transient I/O errors, NaN losses mid-training, and node
failures in the distributed round simulator.

Two properties make the plan usable as a test harness:

* **Determinism** — every decision is a pure function of
  ``(seed, site, coordinates)`` via SHA-256, so the same plan injects
  the same faults on every run, in every process, regardless of
  ``PYTHONHASHSEED``, worker scheduling, or retry interleaving.
* **Boundedness** — transient faults stop firing once ``attempt``
  reaches ``max_faults_per_site``, so a bounded retry loop is
  guaranteed to eventually see a clean attempt.  (Poisoned graphs are
  the deliberate exception: they fail on *every* attempt, which is what
  the pipeline's quarantine path exists for.)

Plans are plain frozen dataclasses and serialise to/from JSON, so a
failing scenario can be attached to a bug report and replayed exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, fields
from typing import Tuple

from repro.errors import ConfigError, FaultInjectionError

#: 2**64, the denominator turning a 64-bit digest prefix into [0, 1).
_SCALE = float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable schedule of injected faults.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    site; the tuple fields pin faults to exact coordinates (epochs,
    graph indices).  The default plan injects nothing.

    Attributes
    ----------
    seed:
        Stream selector; two plans with different seeds fault different
        sites at the same rates.
    worker_crash_rate:
        Probability that a preprocessing chunk attempt dies with a
        (transient) :class:`~repro.errors.FaultInjectionError`.
    io_error_rate:
        Probability that a serial per-graph compute attempt hits a
        transient I/O-style error.
    cache_corrupt_rate:
        Probability that :func:`corrupt_cache_entry` targets a given
        key when the harness sweeps a cache.
    nan_epochs:
        Epochs whose training loss is replaced with NaN (once each) to
        exercise the trainer's divergence guard.
    poison_graphs:
        Global graph indices that fail *deterministically on every
        attempt* — the quarantine path's test vector.
    break_pool_chunk:
        Chunk index at which the process pool is declared broken,
        forcing the pipeline's degrade-to-serial path (-1 disables).
    node_failure_rate:
        Probability that a simulated device fails in a given
        aggregation round (see :mod:`repro.distributed.failures`).
    replica_failure_rate:
        Probability that a serving-cluster replica crashes at a given
        batch launch (see :mod:`repro.cluster`).  The router fails the
        replica over, so boundedness comes from the surviving replicas,
        not from ``max_faults_per_site``; with ``recover_after_s`` set
        the replica later rejoins the fleet (see
        :mod:`repro.cluster.health`).
    crash_replicas:
        Replica ids pinned to crash deterministically (the failover
        tests' precise trigger), independent of the rate.  Pinned
        crashes fire once per replica: a recovered incarnation rolls
        only against the rate.
    crash_after_batches:
        Batch-launch index at which a pinned replica crashes (0 means
        before serving anything).
    recover_after_s:
        Simulated seconds after a crash before the replica rejoins the
        fleet (cold caches, fresh engine).  Negative (the default)
        disables recovery — crashes stay permanent for the run.
    recover_jitter_s:
        Per-replica seeded spread added to ``recover_after_s`` (a
        ``roll`` keyed on the replica and its incarnation), so a
        simultaneous fleet-wide outage does not heal as a thundering
        herd.
    slow_replicas:
        Replica ids pinned as stragglers: every batch they launch is
        stretched by ``slow_factor``.
    slow_factor:
        Service-time multiplier (``>= 1``) applied to straggling
        batches — pinned replicas always, others per ``slow_rate``.
    slow_rate:
        Probability that an unpinned replica's batch launch straggles
        (rolled per ``(replica, lifetime batch)``).
    max_faults_per_site:
        Attempts ``>=`` this index never fault, bounding transient
        faults so default retry policies always recover.
    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    io_error_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    nan_epochs: Tuple[int, ...] = field(default_factory=tuple)
    poison_graphs: Tuple[int, ...] = field(default_factory=tuple)
    break_pool_chunk: int = -1
    node_failure_rate: float = 0.0
    replica_failure_rate: float = 0.0
    crash_replicas: Tuple[int, ...] = field(default_factory=tuple)
    crash_after_batches: int = 0
    recover_after_s: float = -1.0
    recover_jitter_s: float = 0.0
    slow_replicas: Tuple[int, ...] = field(default_factory=tuple)
    slow_factor: float = 1.0
    slow_rate: float = 0.0
    max_faults_per_site: int = 2

    def __post_init__(self) -> None:
        for name in ("worker_crash_rate", "io_error_rate",
                     "cache_corrupt_rate", "node_failure_rate",
                     "replica_failure_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.max_faults_per_site < 0:
            raise ConfigError("max_faults_per_site must be >= 0")
        if self.crash_after_batches < 0:
            raise ConfigError("crash_after_batches must be >= 0")
        if self.slow_factor < 1.0:
            raise ConfigError(
                f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.recover_jitter_s < 0.0:
            raise ConfigError(
                f"recover_jitter_s must be >= 0, got {self.recover_jitter_s}")
        # Tolerate lists from JSON round-trips.
        object.__setattr__(self, "nan_epochs", tuple(self.nan_epochs))
        object.__setattr__(self, "poison_graphs", tuple(self.poison_graphs))
        object.__setattr__(self, "crash_replicas",
                           tuple(self.crash_replicas))
        object.__setattr__(self, "slow_replicas",
                           tuple(self.slow_replicas))

    # ------------------------------------------------------------------
    # The deterministic coin
    # ------------------------------------------------------------------
    def roll(self, site: str, *coords) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, site, coords)."""
        token = ":".join([str(self.seed), site] + [str(c) for c in coords])
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big") / _SCALE

    def _transient(self, site: str, rate: float, attempt: int,
                   *coords) -> bool:
        if attempt >= self.max_faults_per_site:
            return False
        return self.roll(site, attempt, *coords) < rate

    # ------------------------------------------------------------------
    # Site-specific decisions
    # ------------------------------------------------------------------
    def should_crash_worker(self, chunk_index: int, attempt: int) -> bool:
        """Does preprocessing chunk ``chunk_index`` die on ``attempt``?"""
        return self._transient("worker", self.worker_crash_rate,
                               attempt, chunk_index)

    def should_io_error(self, graph_index: int, attempt: int) -> bool:
        """Does the serial compute of one graph hit transient I/O?"""
        return self._transient("io", self.io_error_rate,
                               attempt, graph_index)

    def should_corrupt_cache(self, key: str) -> bool:
        """Is cache entry ``key`` a corruption target for the harness?"""
        return self.roll("cache", key) < self.cache_corrupt_rate

    def should_break_pool(self, chunk_index: int) -> bool:
        """Does the executor break while collecting ``chunk_index``?"""
        return chunk_index == self.break_pool_chunk

    def nan_loss_at(self, epoch: int) -> bool:
        """Is ``epoch``'s training loss replaced with NaN?"""
        return epoch in self.nan_epochs

    def is_poisoned(self, graph_index: int) -> bool:
        """Does graph ``graph_index`` fail on every attempt?"""
        return graph_index in self.poison_graphs

    def node_fails(self, round_index: int, rank: int) -> bool:
        """Does device ``rank`` fail during aggregation ``round_index``?"""
        return (self.roll("node", round_index, rank)
                < self.node_failure_rate)

    def replica_fails(self, replica_id: int, batch_index: int,
                      incarnation: int = 0) -> bool:
        """Does serving replica ``replica_id`` crash when launching its
        ``batch_index``-th lifetime micro-batch?

        Pinned replicas (``crash_replicas``) crash deterministically
        once ``batch_index`` reaches ``crash_after_batches`` — but only
        in their first incarnation, so a recovered replica is not stuck
        in a pinned crash loop.  Everyone else rolls against
        ``replica_failure_rate``; ``batch_index`` counts launches
        across incarnations, so a recovered replica rolls fresh
        coordinates.  The cluster router re-routes a crashed replica's
        work; with ``recover_after_s`` set the replica later rejoins
        (see :meth:`recovery_delay`).
        """
        if (incarnation == 0 and replica_id in self.crash_replicas
                and batch_index >= self.crash_after_batches):
            return True
        return (self.roll("replica", replica_id, batch_index)
                < self.replica_failure_rate)

    @property
    def recovers(self) -> bool:
        """Do crashed serving replicas rejoin the fleet?"""
        return self.recover_after_s >= 0.0

    def recovery_delay(self, replica_id: int, incarnation: int = 0
                       ) -> float:
        """Seconds between ``replica_id``'s crash and its rejoin.

        ``recover_after_s`` plus a seeded per-``(replica, incarnation)``
        share of ``recover_jitter_s``; raises unless :attr:`recovers`.
        """
        if not self.recovers:
            raise ConfigError(
                "recovery_delay on a plan without recovery "
                "(recover_after_s < 0)")
        return (self.recover_after_s
                + self.roll("recover", replica_id, incarnation)
                * self.recover_jitter_s)

    def service_multiplier(self, replica_id: int, batch_index: int
                           ) -> float:
        """Straggler stretch for one batch launch (1.0 = healthy).

        Pinned ``slow_replicas`` straggle on every launch; others roll
        ``slow_rate`` per ``(replica, lifetime batch)``.  The cluster
        multiplies the analytic service time by the returned factor,
        which is what the per-replica circuit breaker observes.
        """
        if replica_id in self.slow_replicas:
            return self.slow_factor
        if (self.slow_rate > 0.0
                and self.roll("slow", replica_id, batch_index)
                < self.slow_rate):
            return self.slow_factor
        return 1.0

    def crash(self, site: str, *coords) -> None:
        """Raise the canonical injected (transient) fault for a site."""
        raise FaultInjectionError(
            f"injected fault at {site}"
            + (f" {coords}" if coords else ""))

    # ------------------------------------------------------------------
    # Serialisation (attach a failing scenario to a bug report)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid FaultPlan JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Cache-corruption harness
# ----------------------------------------------------------------------
#: Supported corruption modes, in the order the fault matrix documents
#: them (docs/resilience.md).
CORRUPTION_MODES = ("truncate", "flip", "tmp_litter", "unlink")


def corrupt_cache_entry(cache, key: str, mode: str = "flip") -> bool:
    """Deliberately damage one on-disk cache entry (test harness only).

    ``cache`` is any object with the :class:`ScheduleCache` disk layout
    (``payload_path(key)`` and a ``dir``); duck-typing keeps this
    module free of upward imports.  Returns True when damage was
    inflicted, False when the payload file does not exist.

    Modes
    -----
    ``truncate``   chop the payload in half (torn write / short read)
    ``flip``       XOR one mid-file byte (bit rot; checksum mismatch)
    ``tmp_litter`` drop a stale ``.tmp.`` sibling (killed writer)
    ``unlink``     delete the payload behind the index's back
    """
    if mode not in CORRUPTION_MODES:
        raise ConfigError(
            f"unknown corruption mode {mode!r}; one of {CORRUPTION_MODES}")
    path = cache.payload_path(key)
    if mode == "tmp_litter":
        litter = path.parent / (path.name + ".tmp.stale0000")
        litter.parent.mkdir(parents=True, exist_ok=True)
        litter.write_bytes(b"half-written payload from a killed writer")
        return True
    if not path.is_file():
        return False
    if mode == "unlink":
        os.unlink(path)
        return True
    data = bytearray(path.read_bytes())
    if mode == "truncate":
        del data[len(data) // 2:]
    else:  # flip
        data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    return True
