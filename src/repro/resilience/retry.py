"""Bounded retry with exponential backoff and an injectable sleep.

The pipeline and trainer never write their own retry loops (megalint
MEGA010 bans unbounded ones); they call :func:`call_with_retry` with a
:class:`RetryPolicy`.  Two design points keep recovery testable:

* **The sleep is a parameter.**  Production passes ``time.sleep``;
  tests pass a recording stub, so a three-attempt exponential backoff
  schedule is asserted in microseconds, not waited out.
* **Only transient failures retry.**  :class:`~repro.errors.TransientError`
  (which injected faults subclass) and ``OSError`` signal "the same
  call may succeed next time"; everything else — a bug, a poisoned
  graph, a shape error — propagates on the first attempt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.errors import ConfigError, TransientError

#: Default set of exception types worth re-attempting.
TRANSIENT_TYPES: Tuple[Type[BaseException], ...] = (TransientError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to back off in between.

    ``delay(attempt)`` for attempts ``0, 1, 2, ...`` follows
    ``backoff_base_s * backoff_multiplier**attempt`` capped at
    ``max_backoff_s`` — deliberately jitter-free so retry timing is as
    deterministic as everything else in this repo.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff durations must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (0-based)."""
        return min(self.backoff_base_s * self.backoff_multiplier ** attempt,
                   self.max_backoff_s)

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule (one entry per possible retry)."""
        return tuple(self.delay(a) for a in range(self.max_attempts - 1))


def call_with_retry(fn: Callable[[int], object], *,
                    policy: Optional[RetryPolicy] = None,
                    sleep: Optional[Callable[[float], None]] = None,
                    retry_on: Tuple[Type[BaseException], ...]
                    = TRANSIENT_TYPES,
                    on_retry: Optional[Callable[[int, BaseException], None]]
                    = None):
    """Call ``fn(attempt)`` until it succeeds or attempts are exhausted.

    ``fn`` receives the 0-based attempt index so deterministic fault
    injection (and logging) can key on it.  ``on_retry(attempt, exc)``
    fires before each backoff sleep — the pipeline uses it to count
    retries in its stats.  The final attempt's exception propagates
    unmodified.
    """
    policy = policy or RetryPolicy()
    sleep = sleep if sleep is not None else time.sleep
    for attempt in range(policy.max_attempts):
        try:
            return fn(attempt)
        except retry_on as exc:
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
    raise AssertionError("unreachable: loop returns or raises")
