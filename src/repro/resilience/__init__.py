"""Fault tolerance: deterministic injection, bounded retry, recovery.

MEGA's value is a long CPU preprocessing pass followed by a long
training run — exactly the shape of workload where a crashed worker,
a corrupted cache entry, or a killed process is routine rather than
exceptional.  This package is the shared failure story:

- :mod:`repro.resilience.faults` — :class:`FaultPlan`, a seeded and
  serialisable schedule of injected faults (worker crashes, cache
  corruption, transient I/O, NaN losses, node failures) that makes
  every recovery path below drivable from tier-1 tests.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` and
  :func:`call_with_retry`: bounded attempts, exponential backoff, and
  an injectable sleep so tests run instantly.

Consumers: :mod:`repro.pipeline.parallel` (per-chunk retry,
degrade-to-serial, quarantine), :mod:`repro.pipeline.cache`
(corruption-as-a-miss plus startup crash recovery),
:mod:`repro.train.trainer` (crash-safe checkpoints, resume, NaN
rollback) and :mod:`repro.distributed.failures` (node failure/recovery
rounds).  See ``docs/resilience.md`` for the full failure matrix.
"""

from repro.resilience.faults import (
    CORRUPTION_MODES,
    FaultPlan,
    corrupt_cache_entry,
)
from repro.resilience.retry import (
    TRANSIENT_TYPES,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "FaultPlan",
    "corrupt_cache_entry",
    "CORRUPTION_MODES",
    "RetryPolicy",
    "call_with_retry",
    "TRANSIENT_TYPES",
]
