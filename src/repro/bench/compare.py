"""The regression gate: diff a candidate ledger against a baseline.

Every metric gets a *direction* that decides what counts as worse:

* ``lower``  — smaller is better (latency, misses, bytes, loss, ...):
  regression when the candidate exceeds the baseline by **strictly more
  than** the tolerance band (default 10% — exactly-at-threshold passes).
* ``higher`` — larger is better (throughput, hits, efficiency, ...):
  symmetric, on the downside.
* ``exact``  — integer counters with no name-derived direction (graph
  counts, epochs): any change at all is a regression, because the
  workloads are deterministic.
* ``drift``  — unclassified floats: a two-sided band, catching silent
  numeric changes in either direction.

Directions are derived from metric-name patterns first and integer
types second, so ``*_bytes`` sizes get a band (archive overhead may
legitimately shift across numpy versions) while bare counters stay
exact.  ``wall`` blocks are never gated — real wall-clock time is not
comparable across machines.

Mismatched schema versions or areas are a :class:`BenchError` (exit 2),
not a regression: the caller is comparing incomparable files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bench.ledger import AREAS, ledger_path, load_ledger
from repro.errors import BenchError

#: Relative tolerance band for float metrics: >10% worse fails.
DEFAULT_TOLERANCE = 0.10

#: Band around a zero baseline, where a relative band is undefined.
ZERO_BASELINE_ABS_TOLERANCE = 1e-9

#: Name fragments marking a metric as lower-is-better.
_LOWER_PATTERNS = (
    "latency", "miss", "dropped", "rejected", "retried", "stall",
    "waste", "dram", "transaction", "bytes", "loss", "diff", "mae",
    "queue_depth", "eviction", "invalidation", "quarantined", "_s",
)

#: Name fragments marking a metric as higher-is-better.
_HIGHER_PATTERNS = (
    "throughput", "hit", "efficiency", "occupancy", "served", "speedup",
    "coverage", "from_cache", "deduplicated",
)


def classify_direction(metric: str, baseline_value, candidate_value) -> str:
    """``lower`` / ``higher`` / ``exact`` / ``drift`` for one metric."""
    name = metric.lower()
    for pattern in _LOWER_PATTERNS:
        if pattern in name:
            return "lower"
    for pattern in _HIGHER_PATTERNS:
        if pattern in name:
            return "higher"
    if (isinstance(baseline_value, int) and isinstance(candidate_value, int)
            and not isinstance(baseline_value, bool)
            and not isinstance(candidate_value, bool)):
        return "exact"
    return "drift"


@dataclass(frozen=True)
class Delta:
    """One metric's baseline/candidate pair and its verdict."""

    workload: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str
    regressed: bool
    reason: str = ""

    def describe(self) -> str:
        status = "REGRESSION" if self.regressed else "ok"
        detail = f" ({self.reason})" if self.reason else ""
        return (f"{status:10s} {self.workload}.{self.metric} "
                f"[{self.direction}] {self.baseline!r} -> "
                f"{self.candidate!r}{detail}")


@dataclass
class CompareReport:
    """Outcome of comparing one area's candidate ledger to its baseline."""

    area: str
    tolerance: float
    deltas: List[Delta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary_line(self) -> str:
        verdict = ("ok" if self.ok
                   else f"{len(self.regressions)} regression(s)")
        return (f"bench[{self.area}]: {len(self.deltas)} metrics "
                f"compared at {self.tolerance:.0%} tolerance — {verdict}")

    def lines(self, verbose: bool = False) -> List[str]:
        out = [self.summary_line()]
        for delta in self.deltas:
            if delta.regressed or verbose:
                out.append("  " + delta.describe())
        for note in self.notes:
            out.append(f"  note: {note}")
        return out


def _is_nan(value) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _evaluate(workload: str, metric: str, base, cand,
              tolerance: float) -> Delta:
    direction = classify_direction(metric, base, cand)
    if _is_nan(base) and _is_nan(cand):
        return Delta(workload, metric, base, cand, direction, False,
                     "both NaN")
    if _is_nan(base) or _is_nan(cand):
        return Delta(workload, metric, base, cand, direction, True,
                     "NaN on one side only")
    if direction == "exact":
        return Delta(workload, metric, base, cand, direction,
                     cand != base,
                     "" if cand == base else "exact counter changed")
    if base == 0:
        worse = abs(cand - base) > ZERO_BASELINE_ABS_TOLERANCE and (
            (direction == "lower" and cand > base)
            or (direction == "higher" and cand < base)
            or direction == "drift")
        return Delta(workload, metric, base, cand, direction, worse,
                     "zero baseline, absolute band" if worse else "")
    band = tolerance * abs(base)
    if direction == "lower":
        delta = cand - base
    elif direction == "higher":
        delta = base - cand
    else:  # drift
        delta = abs(cand - base)
    # Strictly greater than the band; the isclose guard keeps a value
    # that is exactly at threshold (modulo float rounding) passing.
    worse = delta > band and not math.isclose(delta, band, rel_tol=1e-9)
    reason = ""
    if worse:
        reason = f"{(cand - base) / abs(base):+.1%} vs ±{tolerance:.0%}"
    return Delta(workload, metric, base, cand, direction, worse, reason)


def compare_ledgers(baseline: Mapping, candidate: Mapping,
                    tolerance: float = DEFAULT_TOLERANCE) -> CompareReport:
    """Compare two parsed ledger dicts of the same area and schema."""
    if baseline.get("area") != candidate.get("area"):
        raise BenchError(
            f"cannot compare areas {baseline.get('area')!r} vs "
            f"{candidate.get('area')!r}")
    if baseline.get("schema_version") != candidate.get("schema_version"):
        raise BenchError(
            "ledger schema mismatch: baseline v"
            f"{baseline.get('schema_version')} vs candidate v"
            f"{candidate.get('schema_version')} — regenerate the "
            "baseline with the current harness")
    report = CompareReport(area=baseline["area"], tolerance=tolerance)
    base_entries = {e["workload"]: e for e in baseline.get("entries", [])}
    cand_entries = {e["workload"]: e for e in candidate.get("entries", [])}
    for name in sorted(base_entries):
        base_entry = base_entries[name]
        if name not in cand_entries:
            report.deltas.append(Delta(
                name, "<entry>", None, None, "exact", True,
                "workload missing from candidate"))
            continue
        cand_entry = cand_entries[name]
        if base_entry.get("fingerprint") != cand_entry.get("fingerprint"):
            report.notes.append(
                f"{name}: workload fingerprint changed — inputs or "
                "config differ; refresh the baseline if intentional")
        if base_entry.get("seed") != cand_entry.get("seed"):
            report.notes.append(
                f"{name}: seed differs (baseline "
                f"{base_entry.get('seed')}, candidate "
                f"{cand_entry.get('seed')})")
        base_metrics = base_entry.get("metrics", {})
        cand_metrics = cand_entry.get("metrics", {})
        for metric in sorted(base_metrics):
            if metric not in cand_metrics:
                report.deltas.append(Delta(
                    name, metric, base_metrics[metric], None, "exact",
                    True, "metric missing from candidate"))
                continue
            report.deltas.append(_evaluate(
                name, metric, base_metrics[metric], cand_metrics[metric],
                tolerance))
        for metric in sorted(cand_metrics):
            if metric not in base_metrics:
                report.notes.append(
                    f"{name}.{metric}: new metric (not in baseline) — "
                    "not gated until the baseline is refreshed")
    for name in sorted(cand_entries):
        if name not in base_entries:
            report.notes.append(
                f"{name}: new workload (not in baseline) — not gated")
    return report


def compare_directories(baseline_dir: Union[str, Path],
                        candidate_dir: Union[str, Path],
                        areas: Optional[Sequence[str]] = None,
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> List[CompareReport]:
    """Compare every requested area's ledger file between two directories.

    With ``areas=None``, compares each area whose ledger exists in the
    baseline directory; a baseline area missing from the candidate is a
    :class:`BenchError` (the candidate run is incomplete).
    """
    baseline_dir, candidate_dir = Path(baseline_dir), Path(candidate_dir)
    if areas is None:
        areas = [a for a in AREAS
                 if ledger_path(baseline_dir, a).is_file()]
        if not areas:
            raise BenchError(
                f"no BENCH_*.json ledgers found in {baseline_dir}")
    reports = []
    for area in areas:
        base_path = ledger_path(baseline_dir, area)
        cand_path = ledger_path(candidate_dir, area)
        if not base_path.is_file():
            raise BenchError(f"baseline ledger missing: {base_path}")
        if not cand_path.is_file():
            raise BenchError(f"candidate ledger missing: {cand_path}")
        reports.append(compare_ledgers(load_ledger(base_path),
                                       load_ledger(cand_path),
                                       tolerance=tolerance))
    return reports
