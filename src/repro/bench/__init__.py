"""Benchmark harness: deterministic workloads behind the ``BENCH_*.json`` ledgers.

``repro.bench`` turns the repo's perf story from pytest stdout into
machine-readable ledgers at the repo root — one ``BENCH_<area>.json``
per area (``pipeline``, ``serve``, ``kernels``, ``train``) — plus a
``compare`` gate that diffs a candidate run against a committed
baseline with per-metric tolerance bands.  See ``docs/benchmarking.md``
for the schema reference and workflow.

Layering: a *top layer* alongside ``repro.serve`` — it may import the
whole stack, nothing below imports it.
"""

from repro.bench.compare import (CompareReport, DEFAULT_TOLERANCE, Delta,
                                 compare_directories, compare_ledgers)
from repro.bench.ledger import (AREAS, LEDGER_SCHEMA_VERSION, Ledger,
                                LedgerEntry, environment_block,
                                ledger_filename, ledger_path, load_ledger,
                                replay_bytes, replay_surface, write_ledger)
from repro.bench.runners import run_area, run_areas
from repro.bench.workloads import WORKLOADS, workloads_for

__all__ = [
    "AREAS",
    "CompareReport",
    "DEFAULT_TOLERANCE",
    "Delta",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerEntry",
    "WORKLOADS",
    "compare_directories",
    "compare_ledgers",
    "environment_block",
    "ledger_filename",
    "ledger_path",
    "load_ledger",
    "replay_bytes",
    "replay_surface",
    "run_area",
    "run_areas",
    "workloads_for",
    "write_ledger",
]
