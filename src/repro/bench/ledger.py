"""The ``BENCH_*.json`` ledger format: schema, replay surface, (de)serialisation.

One ledger file per benchmark *area* (``BENCH_pipeline.json``,
``BENCH_serve.json``, ``BENCH_kernels.json``, ``BENCH_train.json``,
``BENCH_cluster.json``, ``BENCH_stream.json``), each holding a list of
workload entries.  The format splits every
number into one of two surfaces:

* the **replay surface** — ``schema_version``, ``area``, and each
  entry's ``workload`` / ``seed`` / ``fingerprint`` / ``config`` /
  ``metrics``.  Everything here is a deterministic function of (code,
  seed): two runs of the same tree with the same seed must produce
  byte-identical replay surfaces (:func:`replay_bytes`).
* the **excluded blocks** — the top-level ``environment`` (timestamp,
  git SHA, interpreter/platform versions) and each entry's ``wall``
  dict (real wall-clock measurements).  These are informative only and
  never participate in byte-identity or the regression gate's exact
  checks.

The split is what the megalint ledger-determinism rule (MEGA011)
enforces syntactically: functions named ``as_dict`` /
``replay_surface`` may not read wall clocks or emit wall-ish keys.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.atomic_io import atomic_write_bytes
from repro.errors import BenchError

#: Bump when the ledger layout changes incompatibly; ``compare`` refuses
#: to diff ledgers across schema versions.
LEDGER_SCHEMA_VERSION = 1

#: The benchmark areas, in the order ``run --all`` executes them.
AREAS: Tuple[str, ...] = ("pipeline", "serve", "kernels", "train",
                          "cluster", "stream")

_NUMERIC = (int, float)


def ledger_filename(area: str) -> str:
    """``BENCH_<area>.json`` — the committed-at-repo-root file name."""
    if area not in AREAS:
        raise BenchError(f"unknown bench area {area!r}; one of {AREAS}")
    return f"BENCH_{area}.json"


def ledger_path(directory: Union[str, Path], area: str) -> Path:
    return Path(directory) / ledger_filename(area)


def _check_scalar_map(what: str, mapping: Mapping) -> None:
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise BenchError(f"{what} key {key!r} is not a string")
        if isinstance(value, bool) or not isinstance(value, _NUMERIC):
            raise BenchError(
                f"{what} value {key}={value!r} is not an int/float")


@dataclass(frozen=True)
class LedgerEntry:
    """One workload's results.

    ``metrics`` holds only deterministic scalars (counters, simulated
    seconds, byte sizes); ``wall`` holds real wall-clock seconds and is
    excluded from the replay surface; ``config`` records the workload
    knobs (dataset, scale, batch size, ...) so a ledger is readable
    without the source.
    """

    workload: str
    seed: int
    fingerprint: str
    config: Mapping[str, object] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)
    wall: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workload:
            raise BenchError("ledger entry needs a workload name")
        _check_scalar_map(f"metrics[{self.workload}]", self.metrics)
        _check_scalar_map(f"wall[{self.workload}]", self.wall)

    def to_json_dict(self) -> Dict:
        """Full serialised form, including the excluded ``wall`` block."""
        out = self.replay_surface()
        out["wall"] = {k: self.wall[k] for k in sorted(self.wall)}
        return out

    def replay_surface(self) -> Dict:
        """The deterministic part: byte-identical across same-seed runs."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }


@dataclass(frozen=True)
class Ledger:
    """One area's entries plus the schema version they were written under."""

    area: str
    entries: Tuple[LedgerEntry, ...]
    schema_version: int = LEDGER_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.area not in AREAS:
            raise BenchError(
                f"unknown bench area {self.area!r}; one of {AREAS}")
        names = [e.workload for e in self.entries]
        if len(set(names)) != len(names):
            raise BenchError(
                f"duplicate workload names in {self.area} ledger: {names}")

    def to_json_dict(self, environment: Optional[Mapping] = None) -> Dict:
        ordered = sorted(self.entries, key=lambda e: e.workload)
        return {
            "schema_version": self.schema_version,
            "area": self.area,
            "entries": [e.to_json_dict() for e in ordered],
            "environment": dict(environment or {}),
        }


def environment_block() -> Dict[str, str]:
    """Provenance for a ledger write: timestamp, git SHA, versions.

    Everything here is *excluded* from the replay surface — it exists so
    a human reading a committed baseline knows where it came from.
    """
    import datetime

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, check=False).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    now = datetime.datetime.now(datetime.timezone.utc)
    return {
        "timestamp": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_sha": sha,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
    }


def write_ledger(ledger: Ledger, directory: Union[str, Path],
                 environment: Optional[Mapping] = None) -> Path:
    """Serialise to ``<directory>/BENCH_<area>.json`` (atomic, sorted keys)."""
    path = ledger_path(directory, ledger.area)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = ledger.to_json_dict(
        environment_block() if environment is None else environment)
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"))
    return path


def load_ledger(path: Union[str, Path]) -> Dict:
    """Parse and structurally validate one ledger file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BenchError(f"unreadable ledger {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchError(f"invalid JSON in ledger {path}: {exc}") from exc
    validate_ledger(data, source=str(path))
    return data


def validate_ledger(data: object, source: str = "<ledger>") -> None:
    """Raise :class:`BenchError` unless ``data`` looks like a ledger dict."""
    if not isinstance(data, dict):
        raise BenchError(f"{source}: ledger root must be an object")
    for key in ("schema_version", "area", "entries"):
        if key not in data:
            raise BenchError(f"{source}: ledger missing key {key!r}")
    if not isinstance(data["schema_version"], int):
        raise BenchError(f"{source}: schema_version must be an integer")
    if data["area"] not in AREAS:
        raise BenchError(
            f"{source}: unknown area {data['area']!r}; one of {AREAS}")
    if not isinstance(data["entries"], list):
        raise BenchError(f"{source}: entries must be a list")
    for entry in data["entries"]:
        if not isinstance(entry, dict) or "workload" not in entry:
            raise BenchError(
                f"{source}: each entry needs at least a workload name")
        if not isinstance(entry.get("metrics", {}), dict):
            raise BenchError(
                f"{source}: entry {entry.get('workload')!r} metrics "
                "must be an object")


def replay_surface(data: Mapping) -> Dict:
    """Strip the excluded blocks from a parsed ledger dict."""
    entries = []
    for entry in data.get("entries", []):
        entries.append({k: v for k, v in entry.items() if k != "wall"})
    return {
        "schema_version": data.get("schema_version"),
        "area": data.get("area"),
        "entries": entries,
    }


def replay_bytes(data: Mapping) -> bytes:
    """Canonical bytes of the replay surface — the byte-identity check.

    Two same-seed runs of the same tree must agree on this exactly;
    ``tests/test_bench_gate.py`` enforces it for every area.
    """
    return json.dumps(replay_surface(data), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def ledger_files(directory: Union[str, Path]) -> List[Path]:
    """The ``BENCH_*.json`` files present in ``directory``, area order."""
    directory = Path(directory)
    return [ledger_path(directory, area) for area in AREAS
            if ledger_path(directory, area).is_file()]
