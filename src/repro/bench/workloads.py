"""Deterministic seeded workloads behind each ``BENCH_*.json`` ledger.

Every workload is a named, registered function ``(seed) -> LedgerEntry``
over the existing stack — small enough for CI's bench-smoke job (a few
seconds each) yet exercising the same code paths as the full figure
suites in ``benchmarks/``.  All simulated numbers (kernel times, serve
latencies, epoch costs) come from the analytic GTX-1080 memory model
and are bit-deterministic; only the ``wall`` blocks read a real clock.

Workload *fingerprints* reuse the pipeline's content-addressed hashing
(:mod:`repro.pipeline.hashing`): a fingerprint changes exactly when the
input graphs or the preprocessing config change, which tells ``compare``
that a metric delta reflects a different workload rather than a
regression.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.bench.ledger import AREAS, LedgerEntry
from repro.core.config import MegaConfig
from repro.datasets import load_dataset
from repro.errors import BenchError
from repro.pipeline.hashing import config_fingerprint, graph_fingerprint

#: Dataset scale shared by the pipeline/serve/train workloads: ZINC at
#: 0.004 gives ~40 train / 4 val / 4 test graphs — the same fast-recipe
#: the serve test-suite uses.
SMALL_SCALE = 0.004

#: Scale for the kernel workloads (profiling needs >= batch-size train
#: graphs); matches the benchmarks/ suites' reduced-cost settings.
KERNEL_SCALE = 0.03


def workload_fingerprint(graphs: Sequence, config: MegaConfig,
                         label: str) -> str:
    """Content hash over (workload label, config, every input graph)."""
    digest = hashlib.sha256()
    digest.update(f"bench-workload:{label}:".encode("utf-8"))
    digest.update(config_fingerprint(config))
    for graph in graphs:
        digest.update(graph_fingerprint(graph))
    return digest.hexdigest()


@dataclass(frozen=True)
class Workload:
    """A registered benchmark workload."""

    name: str
    area: str
    description: str
    run: Callable[[int], LedgerEntry]


#: Registration order is execution order within an area.
WORKLOADS: Dict[str, Workload] = {}


def _register(name: str, area: str, description: str):
    if area not in AREAS:
        raise BenchError(f"unknown bench area {area!r}; one of {AREAS}")

    def wrap(fn: Callable[[int], LedgerEntry]) -> Callable:
        if name in WORKLOADS:
            raise BenchError(f"duplicate workload name {name!r}")
        WORKLOADS[name] = Workload(name, area, description, fn)
        return fn

    return wrap


def workloads_for(area: str) -> List[Workload]:
    """The registered workloads of one area, in registration order."""
    if area not in AREAS:
        raise BenchError(f"unknown bench area {area!r}; one of {AREAS}")
    return [w for w in WORKLOADS.values() if w.area == area]


# ---------------------------------------------------------------------------
# pipeline: cold/warm preprocessing through the ScheduleCache
# ---------------------------------------------------------------------------

@_register("pipeline_cold_warm", "pipeline",
           "Algorithm-1 preprocessing of ZINC-small, cold then warm "
           "through an on-disk ScheduleCache")
def run_pipeline_workload(seed: int) -> LedgerEntry:
    from repro.pipeline import ScheduleCache, precompute_paths

    config = MegaConfig(seed=seed)
    dataset = load_dataset("ZINC", scale=SMALL_SCALE)
    graphs = dataset.all_graphs()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache_dir = Path(tmp) / "schedules"
        start = time.perf_counter()
        cold = precompute_paths(graphs, config, cache_dir=cache_dir)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = precompute_paths(graphs, config, cache_dir=cache_dir)
        warm_s = time.perf_counter() - start
        cache = ScheduleCache(cache_dir)
        cache_entries = len(cache)
        cache_bytes = int(cache.total_bytes)
    path_positions = sum(len(rep.path) for rep in cold.paths)
    metrics = {
        "num_graphs": len(graphs),
        "cold_computed": cold.stats.computed,
        "cold_misses": cold.stats.cache.misses,
        "cold_puts": cold.stats.cache.puts,
        "deduplicated": cold.stats.deduplicated,
        "warm_from_cache": warm.stats.from_cache,
        "warm_hits": warm.stats.cache.hits,
        "warm_misses": warm.stats.cache.misses,
        "cache_entries": cache_entries,
        "cache_bytes": cache_bytes,
        "path_positions": path_positions,
    }
    wall = {"cold_wall_s": cold_s, "warm_wall_s": warm_s}
    return LedgerEntry(
        workload="pipeline_cold_warm", seed=seed,
        fingerprint=workload_fingerprint(graphs, config,
                                         "pipeline_cold_warm"),
        config={"dataset": "ZINC", "scale": SMALL_SCALE, "workers": 1},
        metrics=metrics, wall=wall)


# ---------------------------------------------------------------------------
# serve: the inference server under seeded open-loop load
# ---------------------------------------------------------------------------

def _serve_entry(name: str, kind: str, seed: int) -> LedgerEntry:
    from repro.resilience import RetryPolicy
    from repro.serve import (ArrivalProcess, BatchingPolicy,
                             InferenceServer, ServerConfig,
                             generate_requests)
    from repro.train import build_model

    dataset = load_dataset("ZINC", scale=SMALL_SCALE)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    pool = dataset.test[:6]
    process = ArrivalProcess(kind=kind, rate_rps=400.0, seed=seed)
    requests = generate_requests(pool, 64, process)
    server = InferenceServer(
        model,
        config=ServerConfig(queue_capacity=16,
                            policy=BatchingPolicy(max_batch_size=8,
                                                  max_wait_s=0.02,
                                                  bucket_width=16)))
    result = server.run(requests,
                        retry_policy=RetryPolicy(max_attempts=3))
    stats = result.stats
    metrics = {
        "received": stats.received,
        "served": stats.served,
        "rejected": stats.rejected,
        "retried": stats.retried,
        "dropped": stats.dropped,
        "num_batches": len(stats.batches),
        "max_queue_depth": stats.max_queue_depth,
        "mean_queue_depth": stats.mean_queue_depth,
        "mean_batch_occupancy": stats.mean_batch_occupancy,
        "mean_padding_waste": stats.mean_padding_waste,
        "p50_latency_s": stats.p50_latency_s,
        "p95_latency_s": stats.p95_latency_s,
        "p99_latency_s": stats.p99_latency_s,
        "throughput_rps": stats.throughput_rps,
        "sim_duration_s": stats.sim_duration_s,
        "schedule_hits": stats.cache.hits,
        "schedule_misses": stats.cache.misses,
    }
    return LedgerEntry(
        workload=name, seed=seed,
        fingerprint=workload_fingerprint(pool, MegaConfig(), name),
        config={"dataset": "ZINC", "scale": SMALL_SCALE, "model": "GCN",
                "arrival": kind, "rate_rps": 400.0, "num_requests": 64,
                "queue_capacity": 16, "max_batch_size": 8},
        metrics=metrics, wall={})


@_register("serve_poisson", "serve",
           "InferenceServer under a seeded Poisson arrival stream")
def run_serve_poisson(seed: int) -> LedgerEntry:
    return _serve_entry("serve_poisson", "poisson", seed)


@_register("serve_bursty", "serve",
           "InferenceServer under a bursty arrival stream (queue "
           "pressure, rejections, retries)")
def run_serve_bursty(seed: int) -> LedgerEntry:
    return _serve_entry("serve_bursty", "bursty", seed)


# ---------------------------------------------------------------------------
# cluster: N replicas behind the router — policies, tiers, failover
# ---------------------------------------------------------------------------

def _cluster_entry(name: str, policy: str, seed: int,
                   fault_plan=None, cluster_kwargs=None,
                   extra_metrics=None) -> LedgerEntry:
    """One clustered loadtest as a ledger entry.

    ``cluster_kwargs`` feeds extra :class:`ClusterConfig` knobs (the
    self-healing workloads' breaker/brownout settings);
    ``extra_metrics`` is an optional ``stats -> dict`` hook for
    workload-specific gated claims (e.g. the post-rejoin L1 warm-up
    hit rate).
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.resilience import RetryPolicy
    from repro.serve import (ArrivalProcess, BatchingPolicy, ServerConfig,
                             generate_requests)
    from repro.train import build_model

    dataset = load_dataset("ZINC", scale=SMALL_SCALE)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    pool = dataset.test[:6]
    process = ArrivalProcess(kind="poisson", rate_rps=400.0, seed=seed)
    requests = generate_requests(pool, 64, process)
    cluster = Cluster(
        model, fault_plan=fault_plan,
        config=ClusterConfig(
            num_replicas=3, policy=policy,
            server=ServerConfig(queue_capacity=16,
                                policy=BatchingPolicy(max_batch_size=8,
                                                      max_wait_s=0.02,
                                                      bucket_width=16)),
            **(cluster_kwargs or {})))
    result = cluster.run(requests,
                         retry_policy=RetryPolicy(max_attempts=3))
    stats = result.stats
    metrics = {
        "received": stats.received,
        "served": stats.served,
        "failed": stats.failed,
        "shed": stats.shed,
        "shed_events": stats.shed_events,
        "rejected": stats.rejected,
        "retried": stats.retried,
        "failovers": stats.failovers,
        "hedges": stats.hedges,
        "crashed_replicas": stats.crashed_replicas,
        "recovered_replicas": stats.recovered_replicas,
        "breaker_trips": stats.breaker_trips,
        "rebalanced_arcs": stats.rebalanced_arcs,
        "num_batches": stats.num_batches,
        "p50_latency_s": stats.p50_latency_s,
        "p95_latency_s": stats.p95_latency_s,
        "p99_latency_s": stats.p99_latency_s,
        "throughput_rps": stats.throughput_rps,
        "sim_duration_s": stats.sim_duration_s,
        "l1_hits": stats.tier.l1_hits,
        "l2_hits": stats.tier.l2_hits,
        "schedule_misses": stats.tier.misses,
        "l1_hit_rate": stats.tier.l1_hit_rate,
        "l2_hit_rate": stats.tier.l2_hit_rate,
    }
    if extra_metrics is not None:
        metrics.update(extra_metrics(stats))
    config = {"dataset": "ZINC", "scale": SMALL_SCALE, "model": "GCN",
              "arrival": "poisson", "rate_rps": 400.0, "num_requests": 64,
              "num_replicas": 3, "policy": policy,
              "queue_capacity": 16, "max_batch_size": 8}
    if fault_plan is not None:
        config["crash_replicas"] = len(fault_plan.crash_replicas)
        config["crash_after_batches"] = fault_plan.crash_after_batches
        if fault_plan.recovers:
            config["recover_after_s"] = fault_plan.recover_after_s
            config["recover_jitter_s"] = fault_plan.recover_jitter_s
        if fault_plan.slow_replicas:
            config["slow_replicas"] = len(fault_plan.slow_replicas)
            config["slow_factor"] = fault_plan.slow_factor
    for key, value in sorted((cluster_kwargs or {}).items()):
        config[key] = value
    return LedgerEntry(
        workload=name, seed=seed,
        fingerprint=workload_fingerprint(pool, MegaConfig(), name),
        config=config, metrics=metrics, wall={})


@_register("cluster_round_robin", "cluster",
           "3-replica cluster, round-robin routing (content-blind "
           "baseline for the tier hit rates)")
def run_cluster_round_robin(seed: int) -> LedgerEntry:
    return _cluster_entry("cluster_round_robin", "round-robin", seed)


@_register("cluster_hash_affinity", "cluster",
           "3-replica cluster, hash-affinity routing (repeat graphs "
           "revisit their replica's L1 tier)")
def run_cluster_hash_affinity(seed: int) -> LedgerEntry:
    return _cluster_entry("cluster_hash_affinity", "hash-affinity", seed)


@_register("cluster_least_queue", "cluster",
           "3-replica cluster, least-queue routing (load-aware, "
           "content-blind)")
def run_cluster_least_queue(seed: int) -> LedgerEntry:
    return _cluster_entry("cluster_least_queue", "least-queue", seed)


@_register("cluster_failover", "cluster",
           "3-replica hash-affinity cluster with a pinned replica "
           "crash: failover recovery, rebalance cost, no silent drops")
def run_cluster_failover(seed: int) -> LedgerEntry:
    from repro.resilience import FaultPlan

    plan = FaultPlan(seed=seed, crash_replicas=(1,),
                     crash_after_batches=2)
    return _cluster_entry("cluster_failover", "hash-affinity", seed,
                          fault_plan=plan)


@_register("cluster_recovery", "cluster",
           "3-replica cluster where a pinned replica crashes, rejoins "
           "after a seeded delay and re-warms its cold L1 through L2 "
           "promotion (post-rejoin hit rate is the gated claim)")
def run_cluster_recovery(seed: int) -> LedgerEntry:
    from repro.resilience import FaultPlan

    plan = FaultPlan(seed=seed, crash_replicas=(1,),
                     crash_after_batches=1, recover_after_s=0.05,
                     recover_jitter_s=0.01)

    def recovery_metrics(stats):
        record = stats.recoveries[0]
        return {
            "post_rejoin_lookups": record.warmup_lookups,
            "post_rejoin_l1_hit_rate": record.warmup_l1_hit_rate,
            "post_rejoin_l2_hits": record.warmup_l2_hits,
            "lookups_to_first_l1_hit": record.lookups_to_first_l1_hit,
        }

    return _cluster_entry("cluster_recovery", "hash-affinity", seed,
                          fault_plan=plan,
                          extra_metrics=recovery_metrics)


@_register("cluster_brownout", "cluster",
           "3-replica cluster that loses two replicas under a 0.9 "
           "brownout watermark: deterministic load shedding with "
           "capacity-scaled retry-after hints")
def run_cluster_brownout(seed: int) -> LedgerEntry:
    from repro.resilience import FaultPlan

    plan = FaultPlan(seed=seed, crash_replicas=(1, 2),
                     crash_after_batches=0)

    def brownout_metrics(stats):
        turned_away = stats.shed + stats.served
        return {
            "shed_fraction": (stats.shed / turned_away
                              if turned_away else 0.0),
        }

    return _cluster_entry("cluster_brownout", "hash-affinity", seed,
                          fault_plan=plan,
                          cluster_kwargs={"brownout_watermark": 0.9,
                                          "shed_retry_after_s": 0.01},
                          extra_metrics=brownout_metrics)


# ---------------------------------------------------------------------------
# stream: dynamic graphs — repair crossover, scoped invalidation, crash mix
# ---------------------------------------------------------------------------

#: Delta sizes (inserted edges per batch) the crossover workload sweeps.
_CROSSOVER_SIZES = (1, 2, 4, 8, 16)


@_register("stream_repair_crossover", "stream",
           "Incremental schedule repair vs full Algorithm 1 recompute "
           "across delta sizes, in deterministic work units (the "
           "repair-wins-below-crossover claim)")
def run_stream_crossover(seed: int) -> LedgerEntry:
    from repro.cluster import TieredScheduleCache
    from repro.resilience import FaultPlan
    from repro.stream import (DeltaBatch, EdgeDelta, GraphTable,
                              RepairPolicy, ScheduleRepairer)

    config = MegaConfig()
    dataset = load_dataset("ZINC", scale=SMALL_SCALE)
    graph = dataset.test[0]
    present = graph.edge_set()
    n = graph.num_nodes
    candidates = [(u, v) for u in range(n) for v in range(u + 1, n)
                  if (u, v) not in present]
    plan = FaultPlan(seed=seed)
    pool = list(candidates)
    picked = []
    for i in range(max(_CROSSOVER_SIZES)):
        index = min(int(plan.roll("crossover-pick", i) * len(pool)),
                    len(pool) - 1)
        picked.append(pool.pop(index))

    def apply_once(ratio: float, num_ops: int):
        """One batch of ``num_ops`` seeded inserts under one policy."""
        table = GraphTable({"g": graph}, config)
        repairer = ScheduleRepairer(
            table, TieredScheduleCache(config),
            RepairPolicy(recompute_ratio=ratio))
        ops = tuple(EdgeDelta("insert", u, v)
                    for u, v in picked[:num_ops])
        return repairer.apply(
            DeltaBatch(delta_id=0, graph_name="g", ops=ops), 0.0)

    metrics: Dict[str, float] = {"num_nodes": n,
                                 "num_edges": graph.num_edges}
    crossover = 0
    for size in _CROSSOVER_SIZES:
        # float("inf") forces repair; 0.0 forces the recompute path —
        # the same cold-miss compute_schedule a cache miss would run.
        repaired = apply_once(float("inf"), size)
        recomputed = apply_once(0.0, size)
        metrics[f"repair_units_k{size}"] = repaired.work_units
        metrics[f"recompute_units_k{size}"] = recomputed.work_units
        metrics[f"estimate_units_k{size}"] = \
            repaired.estimate.repair_cost
        if crossover == 0 and repaired.work_units >= recomputed.work_units:
            crossover = size
    metrics["crossover_delta_size"] = crossover
    metrics["repair_speedup_k1"] = (
        metrics["recompute_units_k1"] / metrics["repair_units_k1"])
    return LedgerEntry(
        workload="stream_repair_crossover", seed=seed,
        fingerprint=workload_fingerprint([graph], config,
                                         "stream_repair_crossover"),
        config={"dataset": "ZINC", "scale": SMALL_SCALE,
                "delta_sizes": list(_CROSSOVER_SIZES),
                "op": "insert"},
        metrics=metrics, wall={})


def _stream_entry(name: str, seed: int, fault_plan=None,
                  delta_names=None, delta_fraction: float = 0.25,
                  with_control: bool = False,
                  extra_metrics=None) -> LedgerEntry:
    """One mixed query/delta streaming run as a ledger entry.

    ``delta_names`` restricts deltas to a subset of the named graphs
    (queries still range over all of them); ``with_control`` also runs
    the identical query stream with zero deltas on a fresh server, so
    the untouched graphs' hit rate can be compared against a world
    where nothing was ever invalidated.
    """
    from repro.cluster import ClusterConfig
    from repro.resilience import RetryPolicy
    from repro.serve import (ArrivalProcess, BatchingPolicy, ServerConfig)
    from repro.stream import (RepairPolicy, StreamMix, StreamServer,
                              generate_stream)
    from repro.train import build_model

    dataset = load_dataset("ZINC", scale=SMALL_SCALE)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    pool = dataset.test[:6]
    graphs = {f"g{i}": g for i, g in enumerate(pool)}
    config = ClusterConfig(
        num_replicas=3, policy="hash-affinity",
        server=ServerConfig(queue_capacity=16,
                            policy=BatchingPolicy(max_batch_size=8,
                                                  max_wait_s=0.02,
                                                  bucket_width=16)))

    def build_server() -> "StreamServer":
        return StreamServer(model, dict(graphs), config=config,
                            repair_policy=RepairPolicy(),
                            fault_plan=fault_plan)

    server = build_server()
    process = ArrivalProcess(kind="poisson", rate_rps=400.0, seed=seed)
    mix = StreamMix(delta_fraction=delta_fraction, ops_per_delta=4,
                    delete_fraction=0.25, delta_names=delta_names,
                    seed=seed)
    requests, deltas = generate_stream(server.table, 64, process, mix)
    result = server.run(requests, deltas,
                        retry_policy=RetryPolicy(max_attempts=3))
    stats = result.stats
    fleet = stats.cluster

    name_of = {req.request_id: req.graph_name for req in requests}
    untouched = [g for g in sorted(graphs)
                 if delta_names is None or g not in delta_names]

    def untouched_hit_rate(responses) -> float:
        flags = [resp.schedule_hit for resp in responses
                 if name_of[resp.request_id] in untouched]
        return (sum(flags) / len(flags)) if flags else 0.0

    metrics = {
        "num_graphs": stats.num_graphs,
        "num_deltas": stats.num_deltas,
        "repairs": stats.repairs,
        "recomputes": stats.recomputes,
        "repair_work_units": stats.repair_work_units,
        "recompute_work_units": stats.recompute_work_units,
        "invalidated_keys": stats.invalidated_keys,
        "invalidated_l1": stats.invalidated_l1,
        "invalidated_l2": stats.invalidated_l2,
        "noop_batches": stats.noop_batches,
        "seeded_keys": fleet.tier.seeds,
        "max_epoch": max(stats.epochs.values()),
        "received": fleet.received,
        "served": fleet.served,
        "failed": fleet.failed,
        "shed": fleet.shed,
        "retried": fleet.retried,
        "failovers": fleet.failovers,
        "crashed_replicas": fleet.crashed_replicas,
        "num_batches": fleet.num_batches,
        "p50_latency_s": fleet.p50_latency_s,
        "p99_latency_s": fleet.p99_latency_s,
        "sim_duration_s": fleet.sim_duration_s,
        "l1_hits": fleet.tier.l1_hits,
        "l2_hits": fleet.tier.l2_hits,
        "schedule_misses": fleet.tier.misses,
        "untouched_hit_rate": untouched_hit_rate(result.responses),
    }
    if with_control:
        control = build_server().run(
            list(requests), [], retry_policy=RetryPolicy(max_attempts=3))
        metrics["untouched_hit_rate_control"] = \
            untouched_hit_rate(control.responses)
    if extra_metrics is not None:
        metrics.update(extra_metrics(stats))
    config_block = {"dataset": "ZINC", "scale": SMALL_SCALE,
                    "model": "GCN", "arrival": "poisson",
                    "rate_rps": 400.0, "num_events": 64,
                    "num_replicas": 3, "policy": "hash-affinity",
                    "delta_fraction": delta_fraction,
                    "ops_per_delta": 4, "delete_fraction": 0.25}
    if delta_names is not None:
        config_block["delta_names"] = list(delta_names)
    if fault_plan is not None:
        config_block["crash_replicas"] = len(fault_plan.crash_replicas)
        config_block["crash_after_batches"] = \
            fault_plan.crash_after_batches
    return LedgerEntry(
        workload=name, seed=seed,
        fingerprint=workload_fingerprint(pool, MegaConfig(), name),
        config=config_block, metrics=metrics, wall={})


@_register("stream_mixed", "stream",
           "Mixed query/delta run with deltas scoped to two named "
           "graphs: only their keys are invalidated and the untouched "
           "graphs' hit rate matches a delta-free control run")
def run_stream_mixed(seed: int) -> LedgerEntry:
    return _stream_entry("stream_mixed", seed,
                         delta_names=("g0", "g1"), with_control=True)


@_register("stream_crash", "stream",
           "Mixed query/delta run with a pinned replica crash: "
           "failover and epoch pinning compose, conservation holds "
           "across epochs")
def run_stream_crash(seed: int) -> LedgerEntry:
    from repro.resilience import FaultPlan

    plan = FaultPlan(seed=seed, crash_replicas=(1,),
                     crash_after_batches=2)

    def crash_metrics(stats):
        fleet = stats.cluster
        return {"conservation_gap": fleet.received - fleet.served
                - fleet.failed - fleet.shed}

    return _stream_entry("stream_crash", seed, fault_plan=plan,
                         extra_metrics=crash_metrics)


# ---------------------------------------------------------------------------
# kernels: analytic kernel-plan costs + memsim counters (Fig. 4-6 shapes)
# ---------------------------------------------------------------------------

#: Kernel-name prefixes that constitute "graph work" (vs dense sgemm):
#: DGL-style gather/scatter/sort for the baseline, band/reduce for Mega.
_GRAPH_KERNEL_PREFIXES = ("dgl::", "cub::", "mega::")


def _kernels_entry(name: str, model: str, method: str,
                   seed: int) -> LedgerEntry:
    from repro.profiling.workload import cached_dataset, profile_configuration

    batch_size, hidden_dim, num_layers = 32, 64, 4
    profiler = profile_configuration("ZINC", model, method,
                                     batch_size=batch_size,
                                     hidden_dim=hidden_dim,
                                     num_layers=num_layers,
                                     scale=KERNEL_SCALE)
    aggregates = profiler.by_kernel()
    loads = sum(a.load_transactions for a in aggregates.values())
    stores = sum(a.store_transactions for a in aggregates.values())
    dram = sum(a.dram_bytes for a in aggregates.values())
    l2_hits = sum(a.l2_hits for a in aggregates.values())
    l2_total = l2_hits + sum(a.l2_misses for a in aggregates.values())
    graph_pct = sum(
        pct for kernel, pct in profiler.time_percentages().items()
        if kernel.startswith(_GRAPH_KERNEL_PREFIXES))
    metrics = {
        "total_time_s": profiler.total_time,
        "total_calls": profiler.total_calls,
        "sm_efficiency": profiler.normalized_metric("sm_efficiency"),
        "memory_stall_pct": profiler.normalized_metric("memory_stall_pct"),
        "load_transactions": loads,
        "store_transactions": stores,
        "dram_bytes": dram,
        "l2_hit_rate": l2_hits / l2_total if l2_total else 0.0,
        "graph_time_pct": graph_pct,
    }
    graphs = cached_dataset("ZINC", KERNEL_SCALE).train[:batch_size]
    return LedgerEntry(
        workload=name, seed=seed,
        fingerprint=workload_fingerprint(graphs, MegaConfig(), name),
        config={"dataset": "ZINC", "scale": KERNEL_SCALE, "model": model,
                "method": method, "batch_size": batch_size,
                "hidden_dim": hidden_dim, "num_layers": num_layers},
        metrics=metrics, wall={})


def _register_kernels() -> None:
    for model in ("GCN", "GT"):
        for method in ("baseline", "mega"):
            name = f"kernels_{model.lower()}_{method}"
            desc = (f"simulated forward batch of {model} ({method}) — "
                    "the Fig. 4-6 counters at reduced scale")

            def make(name=name, model=model, method=method):
                def run(seed: int) -> LedgerEntry:
                    return _kernels_entry(name, model, method, seed)
                return run

            _register(name, "kernels", desc)(make())


_register_kernels()


# ---------------------------------------------------------------------------
# train: short training run + checkpoint overhead + resume fidelity
# ---------------------------------------------------------------------------

@_register("train_gcn_mega", "train",
           "3-epoch GCN/mega run on ZINC-small: epoch cost, checkpoint "
           "size, and resume fidelity vs an uninterrupted run")
def run_train_workload(seed: int) -> LedgerEntry:
    from repro.train import Trainer, build_model
    from repro.train.checkpoint import save_checkpoint

    num_epochs, batch_size = 3, 16
    dataset = load_dataset("ZINC", scale=SMALL_SCALE)

    def make_trainer():
        model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                            seed=seed)
        return Trainer(model, dataset, method="mega",
                       batch_size=batch_size, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        ckpt_dir = Path(tmp) / "ckpt"
        # Uninterrupted reference run.
        trainer = make_trainer()
        preprocess_s = trainer.preprocess_s
        start = time.perf_counter()
        full = trainer.fit(num_epochs)
        fit_s = time.perf_counter() - start
        # Checkpointed run, killed after 2 epochs, then resumed to the
        # same horizon; fidelity = worst per-epoch deviation.
        interrupted = make_trainer()
        interrupted.fit(2, checkpoint_dir=ckpt_dir, checkpoint_every=1)
        resumed_trainer = make_trainer()
        resumed = resumed_trainer.fit(num_epochs, checkpoint_dir=ckpt_dir,
                                      resume=True)
        start = time.perf_counter()
        save_checkpoint(Path(tmp) / "overhead.npz", trainer.model,
                        optimizer=trainer.optimizer, epoch=num_epochs,
                        metric=full.records[-1].val_metric)
        checkpoint_s = time.perf_counter() - start
        # Measure the model+optimizer checkpoint, not the trainer's
        # full-state one: the latter embeds wall-clock history
        # (preprocess_s per epoch), so its compressed size is not a
        # pure function of the seed and would poison the replay
        # surface.
        checkpoint_bytes = (Path(tmp) / "overhead.npz").stat().st_size
    resume_diff = max(
        max(abs(a.train_loss - b.train_loss),
            abs(a.val_metric - b.val_metric),
            abs(a.sim_time_s - b.sim_time_s))
        for a, b in zip(full.records, resumed.records))
    total_sim_s = sum(r.sim_time_s for r in full.records)
    metrics = {
        "epochs": num_epochs,
        "final_train_loss": full.records[-1].train_loss,
        "final_val_metric": full.records[-1].val_metric,
        "sim_epoch_s": total_sim_s / num_epochs,
        "total_sim_s": total_sim_s,
        "checkpoint_bytes": int(checkpoint_bytes),
        "resume_max_abs_diff": resume_diff,
    }
    wall = {"preprocess_wall_s": preprocess_s, "fit_wall_s": fit_s,
            "checkpoint_wall_s": checkpoint_s}
    return LedgerEntry(
        workload="train_gcn_mega", seed=seed,
        fingerprint=workload_fingerprint(dataset.all_graphs(),
                                         MegaConfig(seed=seed),
                                         "train_gcn_mega"),
        config={"dataset": "ZINC", "scale": SMALL_SCALE, "model": "GCN",
                "method": "mega", "epochs": num_epochs,
                "batch_size": batch_size, "hidden_dim": 16,
                "num_layers": 2},
        metrics=metrics, wall=wall)
