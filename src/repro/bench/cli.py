"""``python -m repro.bench`` — run workloads, compare ledgers, list areas.

Exit-code contract (shared with ``repro.cli``):

* ``0`` — success / no regression;
* ``1`` — ``compare`` found at least one regression;
* ``2`` — :class:`~repro.errors.ReproError` (bad ledger, unknown area,
  missing file), reported as a single stderr line.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark harness: deterministic workloads -> "
                    "BENCH_*.json ledgers (see docs/benchmarking.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run workloads and write ledgers")
    p.add_argument("--all", action="store_true",
                   help="run every area (pipeline, serve, kernels, "
                        "train, cluster, stream)")
    p.add_argument("--areas", nargs="+", metavar="AREA",
                   help="subset of areas to run")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (default 0)")
    p.add_argument("--output-dir", default=".",
                   help="where BENCH_*.json files go (default: cwd, "
                        "i.e. the repo root)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare",
                       help="diff candidate ledgers against a baseline")
    p.add_argument("--baseline", default="benchmarks/baselines",
                   help="directory holding the committed baseline "
                        "ledgers (default: benchmarks/baselines)")
    p.add_argument("--candidate", default=".",
                   help="directory holding the candidate ledgers "
                        "(default: cwd)")
    p.add_argument("--areas", nargs="+", metavar="AREA",
                   help="subset of areas (default: every area present "
                        "in the baseline directory)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative tolerance band (default 0.10)")
    p.add_argument("--verbose", action="store_true",
                   help="print every metric delta, not only regressions")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("list", help="list areas and registered workloads")
    p.set_defaults(func=cmd_list)
    return parser


def cmd_run(args) -> int:
    from repro.bench.ledger import AREAS
    from repro.bench.runners import run_areas
    from repro.errors import BenchError

    if args.all:
        areas = list(AREAS)
    elif args.areas:
        areas = args.areas
    else:
        raise BenchError("bench run needs --all or --areas AREA [...]")
    run_areas(areas, seed=args.seed, output_dir=args.output_dir,
              progress=print)
    return 0


def cmd_compare(args) -> int:
    from repro.bench.compare import DEFAULT_TOLERANCE, compare_directories

    tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    reports = compare_directories(args.baseline, args.candidate,
                                  areas=args.areas, tolerance=tolerance)
    failed = False
    for report in reports:
        for line in report.lines(verbose=args.verbose):
            print(line)
        failed = failed or not report.ok
    return 1 if failed else 0


def cmd_list(args) -> int:
    from repro.bench.ledger import AREAS, ledger_filename
    from repro.bench.workloads import workloads_for

    for area in AREAS:
        print(f"{area}  ->  {ledger_filename(area)}")
        for workload in workloads_for(area):
            print(f"  {workload.name}: {workload.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
