"""Run registered workloads and write their ``BENCH_*.json`` ledgers."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.bench.ledger import (Ledger, environment_block, write_ledger)
from repro.bench.workloads import workloads_for
from repro.errors import BenchError


def run_area(area: str, seed: int = 0) -> Ledger:
    """Execute every workload of one area; returns the in-memory ledger."""
    workloads = workloads_for(area)
    if not workloads:
        raise BenchError(f"no workloads registered for area {area!r}")
    entries = tuple(w.run(seed) for w in workloads)
    return Ledger(area=area, entries=entries)


def run_areas(areas: Iterable[str], seed: int = 0,
              output_dir: Union[str, Path] = ".",
              progress=None) -> Dict[str, Path]:
    """Run several areas and write one ledger file per area.

    ``progress`` is an optional ``callable(str)`` fed one line per
    area (the CLI passes ``print``); the library default is silent.
    The environment block is computed once so all files of a run carry
    the same provenance stamp.
    """
    output_dir = Path(output_dir)
    environment = environment_block()
    written: Dict[str, Path] = {}
    for area in areas:
        if progress is not None:
            progress(f"bench: running area '{area}' (seed {seed}) ...")
        ledger = run_area(area, seed=seed)
        path = write_ledger(ledger, output_dir, environment=environment)
        written[area] = path
        if progress is not None:
            progress(f"bench: wrote {path} "
                     f"({len(ledger.entries)} workloads)")
    return written
