"""SLO accounting for the inference server.

:class:`ServerStats` is the serving counterpart of
:class:`repro.pipeline.stats.CacheStats`: a plain dataclass of counters
and per-event records that the CLI prints after every run and that the
deterministic-replay gate compares byte-for-byte across seeded runs.
Every number in here is derived from *simulated* time and integer
counters — wall-clock never leaks in, which is what makes two runs with
the same seed produce identical JSON.

Latency percentiles use the linear-interpolation definition
(``numpy.percentile`` default) over completed-request latencies in
completion order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List

import numpy as np

from repro.pipeline.stats import CacheStats


@dataclass(frozen=True)
class BatchRecord:
    """One executed micro-batch.

    Attributes
    ----------
    batch_id:
        Launch-order index (0-based).
    launch_s / service_s:
        Simulated launch time and execution duration.
    size:
        Requests in the batch.
    bucket:
        Path-length bucket the batch was drawn from.
    max_length:
        Longest path in the batch (the padded band length).
    padding_waste:
        Wasted padded-slot fraction (``repro.core.batching``).
    occupancy:
        ``size / max_batch_size`` — how full the batch was.
    schedule_misses:
        Members whose schedule had to be computed (not served from the
        schedule cache) at admission time.
    """

    batch_id: int
    launch_s: float
    service_s: float
    size: int
    bucket: int
    max_length: int
    padding_waste: float
    occupancy: float
    schedule_misses: int


@dataclass
class ServerStats:
    """Everything observable about one serving run.

    Counter identities (asserted by the backpressure tests)::

        received  == served + dropped + in_flight_at_shutdown
        attempts  == admitted + rejected
        admitted  == received + retried_admissions

    Attributes
    ----------
    received:
        Distinct requests the client submitted (excluding re-tries).
    attempts:
        Admission attempts including client-side retries.
    admitted:
        Attempts accepted into the bounded queue.
    rejected:
        Attempts refused with retry-after (queue at capacity).
    retried:
        Re-submissions scheduled by the client's retry policy.
    dropped:
        Requests abandoned after the retry policy was exhausted.
    served:
        Requests completed with a prediction.
    max_queue_depth:
        High-water mark of the bounded queue (never exceeds capacity).
    queue_depth_sum / queue_depth_samples:
        Depth accumulated at every admission decision, for the mean.
    sim_duration_s:
        Simulated time of the last completion (0 when nothing served).
    latencies_s:
        Per-request simulated latency, in completion order.
    batches:
        One :class:`BatchRecord` per executed micro-batch.
    cache:
        Schedule-cache counters for this run (serve-local view of the
        PR-1 pipeline cache).
    """

    received: int = 0
    attempts: int = 0
    admitted: int = 0
    rejected: int = 0
    retried: int = 0
    dropped: int = 0
    served: int = 0
    max_queue_depth: int = 0
    queue_depth_sum: int = 0
    queue_depth_samples: int = 0
    sim_duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    # ------------------------------------------------------------------
    # SLO metrics
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100]; 0.0 with no completions."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def throughput_rps(self) -> float:
        """Served requests per simulated second."""
        if self.sim_duration_s <= 0.0:
            return 0.0
        return self.served / self.sim_duration_s

    @property
    def mean_queue_depth(self) -> float:
        if self.queue_depth_samples == 0:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    @property
    def mean_batch_occupancy(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.occupancy for b in self.batches]))

    @property
    def mean_padding_waste(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.padding_waste for b in self.batches]))

    @property
    def schedule_hit_rate(self) -> float:
        return self.cache.hit_rate

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        """Plain-type dict (JSON-ready); the replay gate's byte surface."""
        return {
            "received": self.received,
            "attempts": self.attempts,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "retried": self.retried,
            "dropped": self.dropped,
            "served": self.served,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth_sum": self.queue_depth_sum,
            "queue_depth_samples": self.queue_depth_samples,
            "sim_duration_s": self.sim_duration_s,
            "latencies_s": list(self.latencies_s),
            "batches": [asdict(b) for b in self.batches],
            "cache": self.cache.as_dict(),
        }

    def summary_line(self) -> str:
        """One-line report for CLI output."""
        return (f"serve: {self.served}/{self.received} served "
                f"({self.rejected} rejected, {self.dropped} dropped), "
                f"{len(self.batches)} batches "
                f"(occupancy {self.mean_batch_occupancy:.2f}, "
                f"waste {self.mean_padding_waste:.2f}), "
                f"p50/p95/p99 {self.p50_latency_s * 1e3:.2f}/"
                f"{self.p95_latency_s * 1e3:.2f}/"
                f"{self.p99_latency_s * 1e3:.2f} ms, "
                f"{self.throughput_rps:.1f} req/s, "
                f"schedule-cache {self.cache.hits} hits / "
                f"{self.cache.misses} misses")
