"""Dynamic micro-batching: group queued requests by path-length bucket.

The MEGA runtime pads every batch member's band tensor to the longest
path in the batch (``repro.core.batching``), so mixing short and long
paths wastes padded slots.  The micro-batcher therefore buckets queued
requests by ``path_length // bucket_width`` and only batches within a
bucket — the serving-time analogue of the training-side
:func:`repro.core.batching.bucket_by_length`, adapted to a queue that
fills online instead of a dataset known up front.

Launch policy (all decisions pure functions of queue state + simulated
time, so replays are exact):

* a bucket is **ripe** when it holds ``max_batch_size`` requests, when
  its oldest member has waited ``max_wait_s``, or when the server is
  draining (no arrivals left — nothing to wait for);
* among ripe buckets the one with the *oldest* member launches first
  (ties broken by lower bucket id), taking up to ``max_batch_size``
  members in admission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.batching import padding_waste
from repro.errors import ConfigError
from repro.serve.queueing import QueuedRequest


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the dynamic micro-batcher.

    Attributes
    ----------
    max_batch_size:
        Upper bound on requests per executed batch.
    max_wait_s:
        Longest a queued request may wait before its bucket is flushed
        even when under-full (the latency/occupancy trade-off).
    bucket_width:
        Path-length bucket granularity; requests batch together only
        when ``length // bucket_width`` matches.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.02
    bucket_width: int = 16

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0.0:
            raise ConfigError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.bucket_width < 1:
            raise ConfigError(
                f"bucket_width must be >= 1, got {self.bucket_width}")

    def bucket_of(self, length: int) -> int:
        """Bucket id of a path length."""
        return int(length) // self.bucket_width


@dataclass(frozen=True)
class BatchPlan:
    """One batch the batcher decided to launch."""

    entries: Sequence[QueuedRequest]
    bucket: int

    @property
    def size(self) -> int:
        return len(self.entries)

    @property
    def lengths(self) -> List[int]:
        return [e.length for e in self.entries]

    @property
    def max_length(self) -> int:
        return max(self.lengths) if self.entries else 0

    @property
    def waste(self) -> float:
        """Padded-slot waste of this batch (0 for equal lengths)."""
        return padding_waste(self.lengths)

    @property
    def schedule_misses(self) -> int:
        return sum(1 for e in self.entries if not e.schedule_hit)


@dataclass
class MicroBatcher:
    """Stateless launch decisions over the queue's current contents."""

    policy: BatchingPolicy = field(default_factory=BatchingPolicy)

    def _buckets(self, entries: Sequence[QueuedRequest]
                 ) -> Dict[int, List[QueuedRequest]]:
        buckets: Dict[int, List[QueuedRequest]] = {}
        for entry in entries:
            buckets.setdefault(self.policy.bucket_of(entry.length),
                               []).append(entry)
        return buckets

    def select(self, entries: Sequence[QueuedRequest], now_s: float,
               draining: bool = False) -> Optional[BatchPlan]:
        """The batch to launch at ``now_s``, or ``None`` to keep waiting.

        ``draining`` marks the no-more-arrivals regime in which every
        non-empty bucket is ripe (waiting cannot improve occupancy).
        """
        pol = self.policy
        ripe: List[tuple] = []
        for bucket_id, members in self._buckets(entries).items():
            oldest = min(m.admitted_s for m in members)
            # `oldest + max_wait_s` mirrors next_deadline() exactly so a
            # clock advanced *to* the deadline always finds the bucket
            # ripe (a subtraction here could miss by one float ulp and
            # stall the event loop).
            if (draining or len(members) >= pol.max_batch_size
                    or now_s >= oldest + pol.max_wait_s):
                ripe.append((oldest, bucket_id, members))
        if not ripe:
            return None
        oldest, bucket_id, members = min(ripe, key=lambda r: (r[0], r[1]))
        return BatchPlan(entries=tuple(members[:pol.max_batch_size]),
                         bucket=bucket_id)

    def next_deadline(self, entries: Sequence[QueuedRequest]
                      ) -> Optional[float]:
        """Earliest time a currently-queued request forces a flush."""
        if not entries:
            return None
        return min(e.admitted_s for e in entries) + self.policy.max_wait_s
