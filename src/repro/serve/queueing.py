"""Request types and the bounded admission queue.

Backpressure contract: the queue holds at most ``capacity`` requests.
An admission attempt against a full queue raises
:class:`~repro.errors.QueueFullError` carrying a deterministic
``retry_after_s`` hint (the server's estimate of when a slot frees);
well-behaved clients — the load generator, via
:class:`repro.resilience.RetryPolicy` — re-submit after that delay
instead of spinning.  The queue never silently sheds load: every
rejection is observable in :class:`~repro.serve.stats.ServerStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path import PathRepresentation
from repro.errors import ConfigError, QueueFullError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class InferenceRequest:
    """One prediction request: a graph and the client's identifiers.

    ``attempt`` counts admission attempts (0 on first submission); the
    retry loop increments it on each re-submission so fault injection
    and stats can key on it.

    Streaming requests additionally carry ``graph_name`` (the named
    graph they query — ``graph`` is then the *bound* version) and
    ``epoch`` (the named graph's monotone version the binding pinned).
    Static workloads leave both at their defaults (``None`` / ``-1``)
    and behave exactly as before.
    """

    request_id: int
    graph: Graph
    submitted_s: float = 0.0
    attempt: int = 0
    graph_name: Optional[str] = None
    epoch: int = -1

    def retry(self, at_s: float) -> "InferenceRequest":
        """The re-submission of this request at simulated time ``at_s``.

        Name and epoch travel with the retry; a streaming dispatcher
        re-binds the graph (and may re-pin a newer epoch) on the next
        arrival, since an unadmitted request holds no resolved state.
        """
        return replace(self, submitted_s=at_s, attempt=self.attempt + 1)


@dataclass(frozen=True)
class QueuedRequest:
    """A request after admission: schedule attached, awaiting a batch.

    ``path`` is the MEGA path representation resolved at admission time
    (from the schedule cache when the graph was seen before);
    ``schedule_hit`` records whether that lookup was a cache hit.
    Resolution *is* the epoch pin: everything the executor needs is
    attached here, so later deltas (and their cache invalidations)
    cannot change what an in-flight request replays.
    """

    request: InferenceRequest
    admitted_s: float
    path: PathRepresentation
    schedule_hit: bool

    @property
    def epoch(self) -> int:
        """The graph epoch pinned at admission (-1 for static graphs)."""
        return self.request.epoch

    @property
    def length(self) -> int:
        """Path length — the batcher's bucketing key."""
        return int(self.path.length)


@dataclass(frozen=True)
class InferenceResponse:
    """A completed request: prediction plus latency provenance."""

    request_id: int
    prediction: np.ndarray
    submitted_s: float
    completed_s: float
    batch_id: int
    schedule_hit: bool
    #: Graph epoch the request was pinned to at admission (-1 static).
    epoch: int = -1

    @property
    def latency_s(self) -> float:
        """Simulated submission-to-completion latency."""
        return self.completed_s - self.submitted_s


def scale_retry_after(base_s: float, alive: int, total: int) -> float:
    """Stretch a retry-after hint by the fleet's lost capacity.

    ``base_s * total / alive``: at full capacity the hint is unchanged,
    and it grows monotonically as replicas drop — a fleet at one third
    capacity tells clients to back off three times as long.  The
    cluster's brownout admission controller applies this to both
    queue-full and shed-capacity hints so the client-side
    :class:`~repro.resilience.RetryPolicy` (which takes the max of hint
    and its own backoff) naturally slows under degraded capacity.
    """
    if total < 1 or alive < 1:
        raise ConfigError(
            f"scale_retry_after needs alive >= 1 and total >= 1, "
            f"got alive={alive}, total={total}")
    if alive > total:
        raise ConfigError(
            f"alive ({alive}) cannot exceed total ({total})")
    if base_s < 0.0:
        raise ConfigError(f"base_s must be >= 0, got {base_s}")
    return base_s * (total / alive)


class BoundedRequestQueue:
    """FIFO admission queue with a hard capacity and depth accounting."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: List[QueuedRequest] = []
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def entries(self) -> Tuple[QueuedRequest, ...]:
        """Current queue contents in admission order (read-only view)."""
        return tuple(self._entries)

    def admit(self, entry: QueuedRequest,
              retry_after_s: float = 0.0) -> None:
        """Append ``entry`` or raise :class:`QueueFullError` with the hint."""
        if self.full:
            raise QueueFullError(
                f"queue at capacity ({self.capacity}); retry after "
                f"{retry_after_s:.4f}s", retry_after_s=retry_after_s)
        self._entries.append(entry)
        self.max_depth = max(self.max_depth, len(self._entries))

    def remove(self, batch: Sequence[QueuedRequest]) -> None:
        """Dequeue the entries a launched batch consumed."""
        taken = {id(e) for e in batch}
        kept = [e for e in self._entries if id(e) not in taken]
        if len(kept) != len(self._entries) - len(batch):
            raise ConfigError(
                "batch contains entries that are not queued")
        self._entries = kept
