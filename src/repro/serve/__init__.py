"""Inference serving: the path from a checkpoint to answered requests.

The training side of this repo ends at a PR-4 checkpoint; this package
is the serving side — the ROADMAP's "heavy traffic" story made
concrete and, crucially, *deterministic*:

- :mod:`repro.serve.registry` — named :class:`ModelSpec` entries
  resolved to ready models (weights from
  :mod:`repro.train.checkpoint` archives).
- :mod:`repro.serve.queueing` — request/response types and the bounded
  admission queue whose rejections carry retry-after hints.
- :mod:`repro.serve.batcher` — dynamic micro-batching by path-length
  bucket (the serving analogue of :mod:`repro.core.batching`).
- :mod:`repro.serve.server` — the event loop: simulated time
  (:class:`repro.train.clock.SimulatedClock`), schedule reuse through
  the PR-1 :class:`~repro.pipeline.cache.ScheduleCache`, execution
  cost from the analytic kernel simulator.
- :mod:`repro.serve.loadgen` — seeded Poisson/bursty arrival processes
  built on :meth:`repro.resilience.FaultPlan.roll` (SHA-256 uniforms,
  no ``random`` anywhere).
- :mod:`repro.serve.stats` — :class:`ServerStats`: p50/p95/p99
  latency, throughput, queue depth, batch occupancy, schedule-cache
  hit rate.

Two seeded ``loadtest`` runs produce byte-identical stats; see
``docs/serving.md`` for the request lifecycle and SLO definitions.
"""

from repro.serve.batcher import BatchingPolicy, BatchPlan, MicroBatcher
from repro.serve.loadgen import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    generate_requests,
)
from repro.serve.queueing import (
    BoundedRequestQueue,
    InferenceRequest,
    InferenceResponse,
    QueuedRequest,
    scale_retry_after,
)
from repro.serve.registry import LoadedModel, ModelRegistry, ModelSpec
from repro.serve.server import (
    InferenceServer,
    ScheduleStore,
    ServeResult,
    ServerConfig,
    ServerEngine,
)
from repro.serve.stats import BatchRecord, ServerStats

__all__ = [
    "BatchingPolicy",
    "BatchPlan",
    "MicroBatcher",
    "ArrivalProcess",
    "ARRIVAL_PROCESSES",
    "generate_requests",
    "BoundedRequestQueue",
    "InferenceRequest",
    "InferenceResponse",
    "QueuedRequest",
    "scale_retry_after",
    "ModelRegistry",
    "ModelSpec",
    "LoadedModel",
    "InferenceServer",
    "ScheduleStore",
    "ServeResult",
    "ServerConfig",
    "ServerEngine",
    "BatchRecord",
    "ServerStats",
]
