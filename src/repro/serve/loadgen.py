"""Seeded load generation: deterministic Poisson and bursty arrivals.

Load tests must replay exactly — same seed, same arrival times, same
graphs, same byte-identical :class:`~repro.serve.stats.ServerStats`.
All randomness therefore goes through
:meth:`repro.resilience.FaultPlan.roll`, the SHA-256 uniform draw that
already drives fault injection: every draw is a pure function of
``(seed, site, coordinates)``, independent of ``PYTHONHASHSEED``,
platform, or call order.  No ``random`` or RNG object appears anywhere
in the hot path.

Two arrival processes:

* ``"poisson"`` — i.i.d. exponential inter-arrival times at
  ``rate_rps`` (inverse-CDF transform of the uniform roll);
* ``"bursty"`` — the same transform with the rate modulated in
  alternating blocks of ``burst_len`` requests: bursts arrive at
  ``rate_rps * burst_factor``, lulls at ``rate_rps / burst_factor``.
  Mean load matches Poisson but the peaks are what backpressure tests
  need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.resilience import FaultPlan
from repro.serve.queueing import InferenceRequest

ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class ArrivalProcess:
    """A seeded arrival-time generator."""

    kind: str = "poisson"
    rate_rps: float = 200.0
    seed: int = 0
    burst_factor: float = 6.0
    burst_len: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.kind!r}; "
                f"one of {ARRIVAL_PROCESSES}")
        if self.rate_rps <= 0.0:
            raise ConfigError(
                f"rate_rps must be positive, got {self.rate_rps}")
        if self.burst_factor < 1.0:
            raise ConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}")
        if self.burst_len < 1:
            raise ConfigError(
                f"burst_len must be >= 1, got {self.burst_len}")

    def _roll(self, site: str, *coords) -> float:
        return FaultPlan(seed=self.seed).roll(site, *coords)

    def rate_at(self, index: int) -> float:
        """Instantaneous rate for request ``index`` (burst modulation)."""
        if self.kind == "poisson":
            return self.rate_rps
        in_burst = (index // self.burst_len) % 2 == 0
        return (self.rate_rps * self.burst_factor if in_burst
                else self.rate_rps / self.burst_factor)

    def interarrival_s(self, index: int) -> float:
        """Gap before request ``index`` (exponential inverse-CDF)."""
        u = self._roll("arrival", index)
        # u is in [0, 1); 1-u is in (0, 1], so the log is finite.
        return -math.log(1.0 - u) / self.rate_at(index)

    def arrival_times(self, num_requests: int) -> List[float]:
        """Cumulative arrival timestamps for ``num_requests`` requests."""
        times: List[float] = []
        t = 0.0
        for i in range(num_requests):
            t += self.interarrival_s(i)
            times.append(t)
        return times

    def pick_index(self, index: int, pool_size: int) -> int:
        """Which pool graph request ``index`` queries (uniform roll)."""
        if pool_size < 1:
            raise ConfigError("pool_size must be >= 1")
        return min(int(self._roll("pick", index) * pool_size),
                   pool_size - 1)


def generate_requests(pool: Sequence[Graph], num_requests: int,
                      process: ArrivalProcess) -> List[InferenceRequest]:
    """A deterministic request stream over a pool of known graphs.

    The pool is typically smaller than the stream, so graphs repeat —
    exactly the regime where the schedule cache pays: every repeat skips
    path traversal entirely.
    """
    pool = list(pool)
    if not pool:
        raise ConfigError("request pool must hold at least one graph")
    if num_requests < 0:
        raise ConfigError(
            f"num_requests must be >= 0, got {num_requests}")
    times = process.arrival_times(num_requests)
    return [InferenceRequest(
        request_id=i, graph=pool[process.pick_index(i, len(pool))],
        submitted_s=times[i]) for i in range(num_requests)]
