"""Model registry: from a named spec to a ready-to-serve model.

Serving starts where training ended: a PR-4 checkpoint
(:mod:`repro.train.checkpoint`, atomic ``.npz`` archives).  A
:class:`ModelSpec` records everything needed to rebuild the model that
wrote the checkpoint — architecture, dataset (for encoder vocabulary
sizes), dimensions — and :class:`ModelRegistry` resolves a name to a
:class:`LoadedModel` with weights restored.  A spec without a
checkpoint path serves freshly initialised weights, which keeps smoke
tests and cold-start demos checkpoint-free.

Checkpoint mismatches surface as
:class:`~repro.errors.CheckpointError` naming the offending key (the
PR-4 contract), never as a shape error mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.datasets import load_dataset
from repro.datasets.base import GraphDataset
from repro.errors import ConfigError, ServeError
from repro.models.base import GNNModel
from repro.train.checkpoint import load_checkpoint
from repro.train.trainer import MODEL_CLASSES, build_model


@dataclass(frozen=True)
class ModelSpec:
    """Everything needed to rebuild one servable model."""

    model: str = "GT"
    dataset: str = "ZINC"
    scale: float = 0.02
    hidden_dim: int = 64
    num_layers: int = 4
    seed: int = 0
    checkpoint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_CLASSES:
            raise ConfigError(
                f"unknown model {self.model!r}; "
                f"choose from {sorted(MODEL_CLASSES)}")
        if self.scale <= 0.0:
            raise ConfigError(f"scale must be positive, got {self.scale}")


@dataclass(frozen=True)
class LoadedModel:
    """A resolved spec: model with weights, plus its dataset context.

    ``epoch``/``metric`` are the checkpoint's training metadata
    (0 / 0.0 when serving fresh weights).
    """

    name: str
    spec: ModelSpec
    model: GNNModel
    dataset: GraphDataset
    epoch: int = 0
    metric: float = 0.0


class ModelRegistry:
    """Name -> :class:`ModelSpec` mapping with checkpoint-backed loads."""

    def __init__(self) -> None:
        self._specs: Dict[str, ModelSpec] = {}

    def register(self, name: str, spec: ModelSpec) -> None:
        """Add one spec; re-registering a name is an error (no shadowing)."""
        if name in self._specs:
            raise ServeError(f"model {name!r} is already registered")
        self._specs[name] = spec

    def names(self) -> List[str]:
        return sorted(self._specs)

    def spec(self, name: str) -> ModelSpec:
        if name not in self._specs:
            raise ServeError(
                f"unknown model {name!r}; registered: {self.names()}")
        return self._specs[name]

    def with_checkpoint(self, name: str, checkpoint: str) -> ModelSpec:
        """The registered spec re-pointed at another checkpoint file."""
        return replace(self.spec(name), checkpoint=checkpoint)

    def load(self, name: str) -> LoadedModel:
        """Build the model for ``name`` and restore its checkpoint."""
        spec = self.spec(name)
        dataset = load_dataset(spec.dataset, scale=spec.scale)
        model = build_model(spec.model, dataset,
                            hidden_dim=spec.hidden_dim,
                            num_layers=spec.num_layers, seed=spec.seed)
        epoch, metric = 0, 0.0
        if spec.checkpoint is not None:
            meta = load_checkpoint(spec.checkpoint, model)
            epoch, metric = meta["epoch"], meta["metric"]
        model.eval()
        return LoadedModel(name=name, spec=spec, model=model,
                           dataset=dataset, epoch=epoch, metric=metric)
