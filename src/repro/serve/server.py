"""The inference server: a deterministic event loop in simulated time.

Request lifecycle (``docs/serving.md`` has the full walkthrough)::

    submit -> admit (bounded queue) -> micro-batch -> execute -> respond
                |                                        |
                +-- reject + retry-after (queue full)    +-- SLO stats

Three design rules keep every run replayable:

* **Simulated time only.**  The loop runs on an injectable
  :class:`repro.train.clock.SimulatedClock`; execution cost comes from
  the analytic kernel simulator (:func:`repro.models.kernel_plans
  .simulate_batch`) on the actual :class:`~repro.models.runtime
  .MegaRuntime` of each batch.  Wall-clock never touches the stats.
* **Schedules resolve at admission, through the PR-1 cache.**  Each
  admitted graph is looked up in the :class:`~repro.pipeline.cache
  .ScheduleCache` by content key; repeat graphs skip Algorithm 1
  entirely and the hit is visible in both the serve-local counters and
  the pipeline cache's own.
* **Backpressure is explicit.**  A full queue rejects with a
  deterministic retry-after hint; the client side re-submits under a
  :class:`repro.resilience.RetryPolicy` and gives up loudly (counted as
  ``dropped``) when the policy is exhausted.

Structurally the server splits into two pieces.  :class:`ServerEngine`
is the externally-clocked core — admission, batching, execution,
per-replica stats — that owns **no clock and no client behaviour**:
every method takes an explicit simulated timestamp.
:class:`InferenceServer.run` drives one engine to completion (the
single-node loop below); :mod:`repro.cluster` drives N engines on one
shared clock behind a router.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MegaConfig
from repro.core.path import PathRepresentation
from repro.graph.batch import GraphBatch
from repro.graph.graph import Graph
from repro.memsim.device import DeviceSpec, GPUDevice, GTX_1080
from repro.models.base import GNNModel
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import MegaRuntime
from repro.pipeline.cache import ScheduleCache
from repro.pipeline.hashing import schedule_cache_key
from repro.pipeline.parallel import compute_schedule, materialise
from repro.pipeline.stats import CacheStats
from repro.resilience import RetryPolicy
from repro.serve.batcher import BatchingPolicy, BatchPlan, MicroBatcher
from repro.serve.queueing import (
    BoundedRequestQueue,
    InferenceRequest,
    InferenceResponse,
    QueuedRequest,
)
from repro.serve.stats import BatchRecord, ServerStats
from repro.errors import QueueFullError, ServeError
from repro.train.clock import SimulatedClock


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs independent of the model being served.

    Attributes
    ----------
    queue_capacity:
        Bound of the admission queue (backpressure threshold).
    policy:
        Micro-batching policy (size, wait, bucket width).
    miss_penalty_s:
        Simulated seconds added to a batch's service time per member
        whose schedule was *not* served from the cache — makes the
        preprocessing cost of cold graphs visible in latency.
    retry_after_default_s:
        Retry-after hint before any batch has executed (afterwards the
        hint is the last batch's service time).
    """

    queue_capacity: int = 32
    policy: BatchingPolicy = field(default_factory=BatchingPolicy)
    miss_penalty_s: float = 0.0
    retry_after_default_s: float = 0.005

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.miss_penalty_s < 0.0 or self.retry_after_default_s < 0.0:
            raise ServeError(
                "miss_penalty_s and retry_after_default_s must be >= 0")


class ScheduleStore:
    """Admission-time schedule resolution with serve-local counters.

    Backed by a :class:`ScheduleCache` when one is attached (hits also
    move the pipeline cache's own counters — the observable
    double-entry bookkeeping the acceptance tests assert); falls back
    to an in-process memo otherwise, so the server never needs a disk
    directory just to deduplicate repeat graphs within a run.
    """

    def __init__(self, config: MegaConfig,
                 cache: Optional[ScheduleCache] = None):
        self.config = config
        self.cache = cache
        self.stats = CacheStats()
        self._memo: Dict[str, Tuple] = {}

    def resolve(self, graph: Graph) -> Tuple[PathRepresentation, bool]:
        """Path representation for ``graph``; True when cache-served."""
        key = schedule_cache_key(graph, self.config)
        if self.cache is not None:
            entry = self.cache.get(key)
            if entry is not None:
                self.stats.hits += 1
                return materialise(graph, self.config, entry[0]), True
            entry = compute_schedule(graph, self.config)
            self.cache.put(key, *entry)
            self.stats.misses += 1
            self.stats.puts += 1
            return materialise(graph, self.config, entry[0]), False
        entry = self._memo.get(key)
        if entry is not None:
            self.stats.hits += 1
            return materialise(graph, self.config, entry[0]), True
        entry = compute_schedule(graph, self.config)
        self._memo[key] = entry
        self.stats.misses += 1
        self.stats.puts += 1
        return materialise(graph, self.config, entry[0]), False


@dataclass
class ServeResult:
    """Everything one :meth:`InferenceServer.run` call produced."""

    responses: List[InferenceResponse]
    stats: ServerStats

    def response_for(self, request_id: int) -> InferenceResponse:
        for resp in self.responses:
            if resp.request_id == request_id:
                return resp
        raise ServeError(f"no response for request {request_id} "
                         "(rejected and dropped, or never submitted)")


class ServerEngine:
    """One replica's serving core, driven by an external clock.

    The engine owns the bounded queue, the micro-batcher, the executor
    and a :class:`ServerStats` — everything *local* to one serving
    replica — but no clock, no event heap and no retry behaviour.
    Callers pass explicit simulated timestamps:

    * :meth:`admit` resolves a schedule and enqueues (or raises
      :class:`QueueFullError` with a deterministic retry-after hint);
    * :meth:`select` asks the batcher for a launchable plan;
    * :meth:`launch` executes a plan and returns its completion event;
    * :meth:`complete` retires a finished batch's responses;
    * :meth:`evacuate` empties the queue (cluster failover).

    ``store`` is anything with a ``resolve(graph) -> (path, hit)``
    method and a ``stats`` :class:`CacheStats` — the single-node
    :class:`ScheduleStore` or a per-replica view of the cluster's
    two-tier cache.
    """

    def __init__(self, model: GNNModel, config: ServerConfig, store,
                 device_spec: DeviceSpec = GTX_1080):
        self.model = model
        self.config = config
        self.store = store
        self.device_spec = device_spec
        self.stats = ServerStats()
        self.queue = BoundedRequestQueue(config.queue_capacity)
        self.batcher = MicroBatcher(config.policy)
        self.busy = False
        self.in_flight = 0
        self._cache_before = store.stats.as_dict()

    @property
    def idle(self) -> bool:
        return not self.busy

    @property
    def depth(self) -> int:
        return self.queue.depth

    @property
    def load(self) -> int:
        """Queued plus in-flight requests — the router's balance signal."""
        return self.queue.depth + self.in_flight

    def retry_after(self) -> float:
        """Deterministic hint: the last batch's service time."""
        if self.stats.batches:
            return self.stats.batches[-1].service_s
        return self.config.retry_after_default_s

    def admit(self, request: InferenceRequest, now_s: float) -> None:
        """Enqueue ``request`` or raise :class:`QueueFullError`.

        Counter order matches the historical single-server loop:
        every attempt samples the queue depth, then either admits or
        rejects — so the engine's stats are byte-compatible with the
        pre-refactor server.
        """
        self.stats.attempts += 1
        self.stats.queue_depth_sum += self.queue.depth
        self.stats.queue_depth_samples += 1
        if self.queue.full:
            self.stats.rejected += 1
            raise QueueFullError(
                f"queue at capacity ({self.queue.capacity})",
                retry_after_s=self.retry_after())
        path, hit = self.store.resolve(request.graph)
        self.queue.admit(QueuedRequest(request=request, admitted_s=now_s,
                                       path=path, schedule_hit=hit))
        self.stats.admitted += 1

    def select(self, now_s: float, draining: bool) -> Optional[BatchPlan]:
        """The plan the batcher would launch now, or ``None``."""
        if self.busy or self.queue.depth == 0:
            return None
        return self.batcher.select(self.queue.entries(), now_s,
                                   draining=draining)

    def flush_deadline(self) -> Optional[float]:
        """Earliest time a queued request forces a flush (idle only)."""
        if self.busy or self.queue.depth == 0:
            return None
        return self.batcher.next_deadline(self.queue.entries())

    def launch(self, plan: BatchPlan, now_s: float,
               service_scale: float = 1.0
               ) -> Tuple[float, List[InferenceResponse]]:
        """Execute ``plan``; returns (completion time, responses).

        ``service_scale`` stretches the analytic service time — the
        cluster's straggler injection (:meth:`repro.resilience
        .FaultPlan.service_multiplier`).  The stretched time is what
        lands in the batch record and the latencies, i.e. what a
        latency-watching circuit breaker observes.
        """
        if service_scale < 1.0:
            raise ServeError(
                f"service_scale must be >= 1, got {service_scale}")
        self.queue.remove(plan.entries)
        batch = GraphBatch([e.request.graph for e in plan.entries])
        runtime = MegaRuntime(batch, [e.path for e in plan.entries])
        predictions = np.asarray(self.model(batch, runtime).data)
        profiler = simulate_batch(
            self.model.model_name, runtime, GPUDevice(self.device_spec),
            self.model.config.hidden_dim, self.model.config.num_layers)
        service_s = (profiler.total_time
                     + self.config.miss_penalty_s
                     * plan.schedule_misses) * service_scale
        batch_id = len(self.stats.batches)
        self.stats.batches.append(BatchRecord(
            batch_id=batch_id, launch_s=now_s, service_s=service_s,
            size=plan.size, bucket=plan.bucket,
            max_length=plan.max_length, padding_waste=plan.waste,
            occupancy=plan.size / self.config.policy.max_batch_size,
            schedule_misses=plan.schedule_misses))
        done_s = now_s + service_s
        responses = [InferenceResponse(
            request_id=e.request.request_id,
            prediction=np.array(predictions[i], copy=True),
            submitted_s=e.request.submitted_s, completed_s=done_s,
            batch_id=batch_id, schedule_hit=e.schedule_hit,
            epoch=e.epoch)
            for i, e in enumerate(plan.entries)]
        self.busy = True
        self.in_flight = plan.size
        return done_s, responses

    def complete(self, responses: List[InferenceResponse],
                 now_s: float) -> None:
        """Retire one finished batch: latency accounting, idle again."""
        self.busy = False
        self.in_flight = 0
        for response in responses:
            self.stats.served += 1
            self.stats.latencies_s.append(response.latency_s)
        self.stats.sim_duration_s = max(self.stats.sim_duration_s, now_s)

    def evacuate(self) -> List[InferenceRequest]:
        """Empty the queue, returning the stranded requests.

        The cluster's failover path: a crashed replica's queued
        requests re-enter the router instead of dying with the queue.
        """
        stranded = [e.request for e in self.queue.entries()]
        self.queue.remove(self.queue.entries())
        return stranded

    def finish(self) -> ServerStats:
        """Seal the stats: queue high-water mark and cache delta."""
        self.stats.max_queue_depth = self.queue.max_depth
        after = self.store.stats.as_dict()
        self.stats.cache = CacheStats(
            **{k: after[k] - self._cache_before[k] for k in after})
        return self.stats


class InferenceServer:
    """Single-executor inference server over one loaded model."""

    def __init__(self, model: GNNModel,
                 mega_config: Optional[MegaConfig] = None,
                 cache: Optional[ScheduleCache] = None,
                 clock: Optional[SimulatedClock] = None,
                 config: Optional[ServerConfig] = None,
                 device_spec: DeviceSpec = GTX_1080):
        self.model = model
        self.model.eval()
        self.mega_config = mega_config or MegaConfig()
        self.config = config or ServerConfig()
        self.clock = clock if clock is not None else SimulatedClock()
        self.device_spec = device_spec
        self.store = ScheduleStore(self.mega_config, cache=cache)
        self.batcher = MicroBatcher(self.config.policy)

    # ------------------------------------------------------------------
    def run(self, requests: List[InferenceRequest],
            retry_policy: Optional[RetryPolicy] = None) -> ServeResult:
        """Serve a request stream to completion; returns the result.

        ``retry_policy`` drives the *client side*: a rejected request is
        re-submitted after ``max(retry_after hint, policy backoff)``
        until the policy's attempt budget is spent, then counted as
        dropped.  ``None`` drops rejected requests immediately.
        """
        engine = ServerEngine(self.model, self.config, self.store,
                              device_spec=self.device_spec)
        stats = engine.stats
        stats.received = len(requests)
        responses: List[InferenceResponse] = []

        # (time, tiebreak_seq, kind, payload); kinds: "arrive", "done".
        events: List[Tuple[float, int, str, object]] = []
        seq = 0
        arrivals_pending = 0
        for request in requests:
            heapq.heappush(events,
                           (request.submitted_s, seq, "arrive", request))
            seq += 1
            arrivals_pending += 1

        def admit(request: InferenceRequest, now_s: float) -> None:
            nonlocal seq, arrivals_pending
            try:
                engine.admit(request, now_s)
            except QueueFullError as exc:
                if (retry_policy is not None
                        and request.attempt + 1 < retry_policy.max_attempts):
                    delay = max(exc.retry_after_s,
                                retry_policy.delay(request.attempt))
                    retried = request.retry(now_s + delay)
                    heapq.heappush(
                        events,
                        (retried.submitted_s, seq, "arrive", retried))
                    seq += 1
                    stats.retried += 1
                    # A retried request re-enters the arrival stream.
                    arrivals_pending += 1
                else:
                    stats.dropped += 1

        while events or engine.depth > 0:
            now_s = self.clock.now()
            if engine.idle and engine.depth > 0:
                plan = engine.select(now_s, draining=arrivals_pending == 0)
                if plan is not None:
                    done_s, batch_responses = engine.launch(plan, now_s)
                    heapq.heappush(events,
                                   (done_s, seq, "done", batch_responses))
                    seq += 1
                    continue
                deadline = engine.flush_deadline()
                next_event_s = events[0][0] if events else None
                if next_event_s is None or (deadline is not None
                                            and deadline <= next_event_s):
                    if deadline <= now_s:
                        # A reached deadline must have made its bucket
                        # ripe; anything else would spin forever.
                        raise ServeError(
                            "batcher refused to flush at its own deadline")
                    self.clock.advance_to(deadline)
                    continue
            if not events:
                raise ServeError(
                    "event loop stalled: queued requests but no events")
            t_s, _, kind, payload = heapq.heappop(events)
            self.clock.advance_to(t_s)
            if kind == "arrive":
                arrivals_pending -= 1
                admit(payload, self.clock.now())
            else:
                engine.complete(payload, self.clock.now())
                responses.extend(payload)

        engine.finish()
        return ServeResult(responses=responses, stats=stats)
