"""Node failure and recovery under the two partition layouts.

The §IV-B6 sweeps assume every device survives every round.  Real
clusters do not, and the *cost of recovery* depends on the layout: when
an edge-cut rank dies it must re-fetch boundary rows from **every**
peer it talks to (approaching all-to-all as k grows), while a failed
path-partition rank re-pulls two fixed-size halos from its neighbours
and recomputes one contiguous chunk.  This module replays that
asymmetry with deterministic failures drawn from a
:class:`repro.resilience.FaultPlan`, so the communication reports can
include retry traffic.

Failures are injected per ``(round, rank)`` through
:meth:`FaultPlan.node_fails` — the same ranks fail for both layouts,
so a sweep row compares recovery cost, not luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.path import PathRepresentation
from repro.distributed.simulate import (
    ClusterSpec,
    DeviceStats,
    edge_cut_device_stats,
    path_device_stats,
)
from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.resilience import FaultPlan


@dataclass(frozen=True)
class FailureReport:
    """Aggregate cost of ``rounds`` rounds with failures and recovery."""

    method: str
    partitions: int
    rounds: int
    failures: int              # (round, rank) failure events
    base_s: float              # failure-free time for all rounds
    retry_s: float             # added recovery time
    retry_rows: float          # embedding rows re-shipped for recovery

    @property
    def total_s(self) -> float:
        return self.base_s + self.retry_s

    @property
    def overhead(self) -> float:
        """Recovery time as a fraction of the failure-free time."""
        return self.retry_s / self.base_s if self.base_s else 0.0


def _replay(stats: DeviceStats, rounds: int,
            fault_plan: FaultPlan) -> FailureReport:
    """Charge each failed rank one redo of its compute + exchange."""
    if rounds <= 0:
        raise SimulationError("rounds must be positive")
    report = stats.round_report()
    base = report.total_s * rounds
    failures = 0
    retry_s = 0.0
    retry_rows = 0.0
    for round_index in range(rounds):
        for rank in range(stats.partitions):
            if not fault_plan.node_fails(round_index, rank):
                continue
            failures += 1
            # Recovery: the rank re-fetches its boundary rows (paying
            # its exchange time again) and recomputes its share.  The
            # surviving ranks idle meanwhile, so the round stretches by
            # the full recovery time.
            retry_s += float(stats.comm_s[rank] + stats.compute_s[rank])
            retry_rows += float(stats.exchange_rows[rank])
    return FailureReport(method=stats.method, partitions=stats.partitions,
                         rounds=rounds, failures=failures, base_s=base,
                         retry_s=retry_s, retry_rows=retry_rows)


def simulate_edge_cut_failures(graph: Graph, k: int, feature_dim: int,
                               rounds: int, fault_plan: FaultPlan,
                               spec: Optional[ClusterSpec] = None,
                               seed: int = 0) -> FailureReport:
    """Failure/recovery replay for the edge-cut layout."""
    stats = edge_cut_device_stats(graph, k, feature_dim, spec, seed)
    return _replay(stats, rounds, fault_plan)


def simulate_path_failures(path_rep: PathRepresentation, k: int,
                           feature_dim: int, rounds: int,
                           fault_plan: FaultPlan,
                           spec: Optional[ClusterSpec] = None
                           ) -> FailureReport:
    """Failure/recovery replay for MEGA's path partition."""
    stats = path_device_stats(path_rep, k, feature_dim, spec)
    return _replay(stats, rounds, fault_plan)


def failure_sweep(graph: Graph, path_rep: PathRepresentation,
                  ks: List[int], fault_plan: FaultPlan,
                  rounds: int = 16, feature_dim: int = 64,
                  spec: Optional[ClusterSpec] = None,
                  seed: int = 0) -> List[dict]:
    """Side-by-side failure overhead across partition counts.

    Same deterministic ``(round, rank)`` failures hit both layouts, so
    each row isolates the recovery-cost asymmetry: edge-cut retry rows
    track the cut size, path retry rows stay at two halos per failure.
    """
    rows = []
    for k in ks:
        edge = simulate_edge_cut_failures(
            graph, k, feature_dim, rounds, fault_plan, spec, seed)
        path = simulate_path_failures(
            path_rep, k, feature_dim, rounds, fault_plan, spec)
        rows.append({
            "k": k,
            "failures": edge.failures,
            "edge_cut_retry_rows": edge.retry_rows,
            "path_retry_rows": path.retry_rows,
            "edge_cut_overhead": edge.overhead,
            "path_overhead": path.overhead,
            "edge_cut_total_s": edge.total_s,
            "path_total_s": path.total_s,
        })
    return rows
