"""Communication-cost comparison: edge-cut baseline vs path partition.

For a conventional edge-cut node partition, every cut edge forces the
owner of each endpoint to ship that node's embedding to the other
partition every aggregation round, and the set of partition pairs that
must talk approaches all-to-all as k grows.  MEGA's path partition
communicates only between adjacent chunks (Section IV-B6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.core.path import PathRepresentation
from repro.distributed.path_partition import path_communication
from repro.graph.graph import Graph
from repro.graph.partition import cut_edges, edge_cut_partition


@dataclass(frozen=True)
class CommReport:
    """Per-round communication for one layout."""

    method: str
    partitions: int
    communication_pairs: int   # distinct partition pairs that exchange data
    volume_rows: int           # embedding rows shipped per round


def edge_cut_communication(graph: Graph, k: int,
                           seed: int = 0) -> CommReport:
    """Communication of a balanced BFS-grown edge-cut partition."""
    rng = np.random.default_rng(seed)
    assignment = edge_cut_partition(graph, k, rng)
    pairs: Set[Tuple[int, int]] = set()
    volume = 0
    for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
        a, b = int(assignment[s]), int(assignment[d])
        if a != b:
            pairs.add((min(a, b), max(a, b)))
            volume += 2  # each endpoint row crosses once per direction
    return CommReport(method="edge_cut", partitions=k,
                      communication_pairs=len(pairs), volume_rows=volume)


def path_partition_communication(path_rep: PathRepresentation,
                                 k: int) -> CommReport:
    """Communication of MEGA's contiguous path partition."""
    report = path_communication(path_rep, k)
    return CommReport(method="path", partitions=k,
                      communication_pairs=report["communication_pairs"],
                      volume_rows=report["halo_rows"])


def communication_sweep(graph: Graph, path_rep: PathRepresentation,
                        ks: List[int], seed: int = 0) -> List[dict]:
    """Side-by-side sweep over partition counts (the §IV-B6 analysis)."""
    rows = []
    for k in ks:
        base = edge_cut_communication(graph, k, seed=seed)
        mega = path_partition_communication(path_rep, k)
        rows.append({
            "k": k,
            "edge_cut_pairs": base.communication_pairs,
            "edge_cut_volume": base.volume_rows,
            "path_pairs": mega.communication_pairs,
            "path_volume": mega.volume_rows,
        })
    return rows
