"""Distributed-training analysis: partitioners and communication models."""

from repro.distributed.comm import (
    CommReport,
    communication_sweep,
    edge_cut_communication,
    path_partition_communication,
)
from repro.distributed.path_partition import (
    PathPartition,
    partition_path,
    path_communication,
)
from repro.distributed.simulate import (
    ClusterSpec,
    RoundReport,
    scaling_sweep,
    simulate_edge_cut_round,
    simulate_path_round,
)

__all__ = [
    "CommReport",
    "edge_cut_communication",
    "path_partition_communication",
    "communication_sweep",
    "PathPartition",
    "partition_path",
    "path_communication",
    "ClusterSpec",
    "RoundReport",
    "simulate_edge_cut_round",
    "simulate_path_round",
    "scaling_sweep",
]
