"""Distributed-training analysis: partitioners, communication models,
and failure/recovery replay (``failures``)."""

from repro.distributed.comm import (
    CommReport,
    communication_sweep,
    edge_cut_communication,
    path_partition_communication,
)
from repro.distributed.failures import (
    FailureReport,
    failure_sweep,
    simulate_edge_cut_failures,
    simulate_path_failures,
)
from repro.distributed.path_partition import (
    PathPartition,
    partition_path,
    path_communication,
)
from repro.distributed.simulate import (
    ClusterSpec,
    DeviceStats,
    RoundReport,
    edge_cut_device_stats,
    path_device_stats,
    scaling_sweep,
    simulate_edge_cut_round,
    simulate_path_round,
)

__all__ = [
    "CommReport",
    "edge_cut_communication",
    "path_partition_communication",
    "communication_sweep",
    "FailureReport",
    "failure_sweep",
    "simulate_edge_cut_failures",
    "simulate_path_failures",
    "PathPartition",
    "partition_path",
    "path_communication",
    "ClusterSpec",
    "DeviceStats",
    "RoundReport",
    "edge_cut_device_stats",
    "path_device_stats",
    "simulate_edge_cut_round",
    "simulate_path_round",
    "scaling_sweep",
]
