"""Path partitioning: MEGA's distributed layout.

A path representation is a 1-D sequence, so distributing it is a matter
of cutting it into ``k`` contiguous chunks.  Diagonal attention only
looks ``ω`` positions to each side, so a chunk exchanges exactly one
halo of ``ω`` rows with each neighbouring chunk — two communications per
interior partition, O(k) total — versus the all-to-all neighbourhood
exchange an edge-cut node partition needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.core.path import PathRepresentation
from repro.errors import GraphError


@dataclass(frozen=True)
class PathPartition:
    """Contiguous chunks of a path representation."""

    boundaries: np.ndarray        # k+1 cut positions
    window: int

    @property
    def num_partitions(self) -> int:
        return int(len(self.boundaries) - 1)

    def chunk(self, i: int) -> Tuple[int, int]:
        return int(self.boundaries[i]), int(self.boundaries[i + 1])

    def sizes(self) -> np.ndarray:
        return np.diff(self.boundaries)


def partition_path(path_rep: PathRepresentation, k: int) -> PathPartition:
    """Cut the path into ``k`` near-equal contiguous chunks."""
    if k <= 0:
        raise GraphError(f"k must be positive, got {k}")
    if k > max(path_rep.length, 1):
        raise GraphError(
            f"cannot cut a path of length {path_rep.length} into {k} chunks")
    boundaries = np.linspace(0, path_rep.length, k + 1).round().astype(np.int64)
    return PathPartition(boundaries=boundaries, window=path_rep.window)


def path_communication(path_rep: PathRepresentation, k: int,
                       feature_dim: int = 1) -> dict:
    """Communication report for a k-way path partition.

    Each pair of adjacent chunks exchanges a halo of ``ω`` positions per
    direction per round; messages crossing a boundary farther than ω
    cannot exist by construction.  Volume is in feature rows
    (multiply by 4·dim for bytes).
    """
    part = partition_path(path_rep, k)
    pairs = max(k - 1, 0)
    halo_rows = 2 * part.window * pairs  # both directions
    # Count band messages that actually cross a boundary (≤ halo bound).
    chunk_of = np.searchsorted(part.boundaries[1:-1],
                               np.arange(path_rep.length), side="right")
    i, j = path_rep.band.pos_src, path_rep.band.pos_dst
    crossing = int((chunk_of[i] != chunk_of[j]).sum()) if len(i) else 0
    return {
        "partitions": k,
        "communication_pairs": pairs,
        "halo_rows": halo_rows * feature_dim,
        "crossing_messages": crossing,
        "max_load": int(part.sizes().max()) if k else 0,
        "min_load": int(part.sizes().min()) if k else 0,
    }
