"""Simulated multi-device training rounds.

Extends the §IV-B6 communication *analysis* into a round-time *model*:
each of ``k`` simulated devices processes its partition's share of the
aggregation work, then the devices exchange boundary data.  Round time
is the slowest device's compute plus its communication — so imbalance
and message count both hurt, exactly the trade the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.path import PathRepresentation
from repro.distributed.path_partition import partition_path
from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.graph.partition import edge_cut_partition


@dataclass(frozen=True)
class ClusterSpec:
    """Interconnect parameters of the simulated cluster."""

    link_bandwidth_gbs: float = 10.0     # per-link, e.g. 10 GbE
    message_latency_us: float = 20.0     # per partition-pair handshake
    device_row_rate: float = 5e7         # aggregated feature rows/s/device

    @property
    def link_bandwidth(self) -> float:
        return self.link_bandwidth_gbs * 1e9 / 8.0  # bytes/s


@dataclass
class RoundReport:
    """One aggregation round under a layout."""

    method: str
    partitions: int
    compute_s: float          # slowest device's compute
    communication_s: float
    imbalance: float          # max/mean device load

    @property
    def total_s(self) -> float:
        return self.compute_s + self.communication_s


@dataclass(frozen=True)
class DeviceStats:
    """Per-device decomposition of one aggregation round.

    The round simulators reduce this to a :class:`RoundReport`
    (slowest device wins); :mod:`repro.distributed.failures` replays it
    per failed rank to price recovery traffic.
    """

    method: str
    partitions: int
    compute_s: "np.ndarray"        # per-device aggregation time
    comm_s: "np.ndarray"           # per-device exchange time
    exchange_rows: "np.ndarray"    # embedding rows each device ships/round
    peer_counts: "np.ndarray"      # distinct partners each device talks to

    def round_report(self) -> RoundReport:
        loads = self.compute_s
        mean = loads.mean() if loads.size else 0.0
        return RoundReport(
            method=self.method, partitions=self.partitions,
            compute_s=float(loads.max()) if loads.size else 0.0,
            communication_s=float(self.comm_s.max())
            if self.comm_s.size else 0.0,
            imbalance=float(loads.max() / mean) if mean else 1.0)


def edge_cut_device_stats(graph: Graph, k: int, feature_dim: int,
                          spec: Optional[ClusterSpec] = None,
                          seed: int = 0) -> DeviceStats:
    """Per-device load/communication of an edge-cut node partition."""
    spec = spec or ClusterSpec()
    if k <= 0:
        raise SimulationError("k must be positive")
    rng = np.random.default_rng(seed)
    assignment = edge_cut_partition(graph, k, rng)
    s, d = graph.directed_edges()
    # Per-device aggregation load: messages landing on its vertices.
    loads = np.bincount(assignment[d], minlength=k).astype(float)
    # Communication: every cut edge ships a row each way.  Each device
    # pays its own cross volume plus one message-latency handshake per
    # peer — the all-to-all degradation the paper cites.
    row_bytes = feature_dim * 4
    device_volume = np.zeros(k)
    device_peers = [set() for _ in range(k)]
    for a, b in zip(assignment[graph.src], assignment[graph.dst]):
        if a != b:
            device_volume[a] += 1
            device_volume[b] += 1
            device_peers[a].add(int(b))
            device_peers[b].add(int(a))
    peer_counts = np.asarray([len(p) for p in device_peers], dtype=float)
    comm = (device_volume * row_bytes / spec.link_bandwidth
            + peer_counts * spec.message_latency_us * 1e-6)
    return DeviceStats(method="edge_cut", partitions=k,
                       compute_s=loads / spec.device_row_rate,
                       comm_s=comm, exchange_rows=device_volume,
                       peer_counts=peer_counts)


def path_device_stats(path_rep: PathRepresentation, k: int,
                      feature_dim: int,
                      spec: Optional[ClusterSpec] = None) -> DeviceStats:
    """Per-device load/communication of MEGA's contiguous path partition."""
    spec = spec or ClusterSpec()
    part = partition_path(path_rep, k)
    sizes = part.sizes().astype(float)
    # Per-device load: band messages whose destination lies in the chunk
    # (proportional to chunk length for a uniform band).
    msg_per_pos = (2.0 * path_rep.band.num_edges
                   / max(path_rep.length, 1))
    loads = sizes * msg_per_pos
    row_bytes = feature_dim * 4
    halo_rows = 2.0 * path_rep.window
    # Each device exchanges halos with both neighbours, in parallel
    # across pairs: one halo transfer + latency per direction (the two
    # directions collapse onto one neighbour at k == 2).
    peer_counts = np.full(k, 2.0 if k > 1 else 0.0)
    comm = peer_counts * (halo_rows * row_bytes / spec.link_bandwidth
                          + spec.message_latency_us * 1e-6)
    return DeviceStats(method="path", partitions=k,
                       compute_s=loads / spec.device_row_rate,
                       comm_s=comm,
                       exchange_rows=peer_counts * halo_rows,
                       peer_counts=peer_counts)


def simulate_edge_cut_round(graph: Graph, k: int, feature_dim: int,
                            spec: Optional[ClusterSpec] = None,
                            seed: int = 0) -> RoundReport:
    """Round time for a balanced edge-cut node partition."""
    return edge_cut_device_stats(
        graph, k, feature_dim, spec, seed).round_report()


def simulate_path_round(path_rep: PathRepresentation, k: int,
                        feature_dim: int,
                        spec: Optional[ClusterSpec] = None) -> RoundReport:
    """Round time for MEGA's contiguous path partition."""
    return path_device_stats(path_rep, k, feature_dim, spec).round_report()


def scaling_sweep(graph: Graph, path_rep: PathRepresentation,
                  ks: List[int], feature_dim: int = 64,
                  spec: Optional[ClusterSpec] = None,
                  seed: int = 0) -> List[dict]:
    """Strong-scaling comparison across partition counts."""
    spec = spec or ClusterSpec()
    rows = []
    base_edge = simulate_edge_cut_round(graph, 1, feature_dim, spec, seed)
    base_path = simulate_path_round(path_rep, 1, feature_dim, spec)
    for k in ks:
        edge = simulate_edge_cut_round(graph, k, feature_dim, spec, seed)
        path = simulate_path_round(path_rep, k, feature_dim, spec)
        rows.append({
            "k": k,
            "edge_cut_round_s": edge.total_s,
            "path_round_s": path.total_s,
            "edge_cut_scaling": base_edge.total_s / edge.total_s,
            "path_scaling": base_path.total_s / path.total_s,
            "edge_cut_comm_share": (edge.communication_s / edge.total_s
                                    if edge.total_s else 0.0),
            "path_comm_share": (path.communication_s / path.total_s
                                if path.total_s else 0.0),
        })
    return rows
