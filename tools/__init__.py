"""Developer tooling for the MEGA reproduction.

Nothing in here is imported by ``src/repro`` — tools observe the
codebase (via ``ast``) but are never a runtime dependency of it.

- :mod:`tools.megalint` — the repo-specific invariant linter.
"""
