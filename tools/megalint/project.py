"""The project loader: one parse of the whole tree, plus a symbol table.

The per-file walk (:mod:`tools.megalint.engine`) sees one module at a
time, which is exactly the blind spot the cross-module rules
(MEGA012–015) exist to close: a wall-clock read two calls away from a
replay surface, an upward call routed through a package re-export, a
dead ``__all__`` export, a drifted duck-type.  This module builds the
shared substrate for those rules:

* :class:`ParseCache` — every file is read and ``ast.parse``\\ d at most
  once per run, shared between the per-file walk and the project pass
  (the engine's historical double-parse is gone; a test asserts the
  parse count).
* :class:`ModuleInfo` — per-module symbol table: top-level defs,
  classes with their methods, import aliases resolved to absolute
  dotted targets, and the literal ``__all__`` export list.
* :class:`ProjectIndex` — the whole-program view: every module in the
  *checked* roots plus reference-only roots (tests/examples/benchmarks
  by default) whose imports count as uses for dead-export analysis but
  which are never themselves linted.
* symbol resolution (:meth:`ProjectIndex.resolve`) that follows
  re-export chains, so ``from repro import helper`` resolves to the
  defining module even when ``repro/__init__`` merely re-exported it.

Everything stays ``ast`` on source text — the never-imports-checked-code
guarantee holds for the project pass exactly as for the per-file walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.megalint.config import LintConfig
from tools.megalint.engine import (
    ParseCache,
    ParsedFile,
    Violation,
    iter_python_files,
    module_name_for,
    scan_root_for,
)

#: Re-export resolution depth bound (a chain longer than this is a
#: pathological import cycle; resolution gives up rather than loops).
_MAX_RESOLVE_DEPTH = 16


@dataclass
class ClassInfo:
    """One class definition: methods, class attributes, base names."""

    name: str
    node: ast.ClassDef
    #: method name -> def node (top-level of the class body only).
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: class-level attribute names (``name = "round-robin"`` style).
    attrs: List[str] = field(default_factory=list)
    #: base-class expressions as dotted strings, unresolved.
    bases: List[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    name: str
    parsed: ParsedFile
    #: top-level bound names -> defining node (defs, classes, assigns).
    defs: Dict[str, ast.AST] = field(default_factory=dict)
    #: local import alias -> absolute dotted target.  ``import a.b``
    #: binds ``a`` -> ``a``; ``import a.b as c`` binds ``c`` -> ``a.b``;
    #: ``from a.b import x as y`` binds ``y`` -> ``a.b.x``.
    imports: Dict[str, str] = field(default_factory=dict)
    #: modules star-imported (``from a.b import *``).
    star_imports: List[str] = field(default_factory=list)
    #: literal ``__all__`` entries as (node, name), or None when the
    #: module has no statically-readable ``__all__``.
    exports: Optional[List[Tuple[ast.AST, str]]] = None
    #: class name -> ClassInfo for top-level classes.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def tree(self) -> ast.Module:
        return self.parsed.tree


def _resolve_relative_import(module: str, is_package: bool,
                             node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    base_parts = module.split(".") if module else []
    if not is_package:
        base_parts = base_parts[:-1]
    strip = node.level - 1
    if strip:
        base_parts = base_parts[:-strip] if strip < len(base_parts) else []
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _literal_exports(tree: ast.Module) -> Optional[List[Tuple[ast.AST, str]]]:
    """``__all__`` entries when assigned once as a literal list/tuple."""
    found = None
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in stmt.targets):
                value = stmt.value
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"):
            value = stmt.value
        if value is None:
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None  # dynamically built: not statically checkable
        entries = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            entries.append((elt, elt.value))
        found = entries
    # Any augmented mutation makes the surface dynamic.
    for node in ast.walk(tree):
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "__all__"):
            return None
    return found


def _index_module(name: str, parsed: ParsedFile) -> ModuleInfo:
    """Build the symbol table of one module from its AST."""
    info = ModuleInfo(name=name, parsed=parsed)
    is_package = parsed.path.name == "__init__.py"
    for stmt in parsed.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.defs[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            info.defs[stmt.name] = stmt
            cls = ClassInfo(name=stmt.name, node=stmt)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    cls.methods[item.name] = item
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            cls.attrs.append(target.id)
                elif (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    cls.attrs.append(item.target.id)
            for base in stmt.bases:
                flat = _dotted(base)
                if flat:
                    cls.bases.append(flat)
            info.classes[stmt.name] = cls
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    info.imports[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            target = _resolve_relative_import(name, is_package, stmt)
            if not target:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    info.star_imports.append(target)
                else:
                    info.imports[alias.asname or alias.name] = (
                        f"{target}.{alias.name}")
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.defs[target.id] = stmt
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            info.defs[stmt.target.id] = stmt
        elif isinstance(stmt, (ast.If, ast.Try)):
            # One level of conditional defs (TYPE_CHECKING / fallbacks).
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    info.defs.setdefault(sub.name, sub)
    info.exports = _literal_exports(parsed.tree)
    return info


class ProjectIndex:
    """Whole-program symbol view over the checked + reference roots."""

    def __init__(self, config: LintConfig):
        self.config = config
        #: dotted module name -> ModuleInfo, for the linted roots.
        self.modules: Dict[str, ModuleInfo] = {}
        #: reference-only modules (tests/examples/...): their imports
        #: count as uses, but they are never linted.
        self.reference_modules: Dict[str, ModuleInfo] = {}
        self._resolve_memo: Dict[Tuple[str, str], Optional[str]] = {}
        self._callgraph = None

    def callgraph(self):
        """The project call graph, built lazily and shared between
        the rules that consume it (MEGA012/MEGA013)."""
        if self._callgraph is None:
            from tools.megalint.callgraph import CallGraph
            self._callgraph = CallGraph.build(self)
        return self._callgraph

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, targets: Sequence[Path], config: LintConfig,
              cache: Optional[ParseCache] = None,
              reference_roots: Optional[Sequence[Path]] = None
              ) -> "ProjectIndex":
        """Parse and index every module under ``targets``.

        ``reference_roots`` (defaulting to the config's
        ``reference-roots`` that exist on disk) are indexed into
        :attr:`reference_modules` only.
        """
        cache = cache or ParseCache()
        index = cls(config)
        for target in targets:
            target = Path(target)
            root = scan_root_for(target)
            for path in iter_python_files(target):
                parsed = cache.load(path)
                if parsed.tree is None:
                    continue  # parse errors are the per-file walk's job
                name = module_name_for(path, root)
                index.modules.setdefault(name, _index_module(name, parsed))
        if reference_roots is None:
            reference_roots = [Path(r) for r in config.reference_roots
                               if Path(r).is_dir()]
        for target in reference_roots:
            target = Path(target)
            root = scan_root_for(target)
            for path in iter_python_files(target):
                parsed = cache.load(path)
                if parsed.tree is None:
                    continue
                name = module_name_for(path, root)
                if name in index.modules:
                    continue
                index.reference_modules.setdefault(
                    name, _index_module(name, parsed))
        return index

    # -- resolution ----------------------------------------------------
    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        """The checked module owning ``qualname`` (longest prefix match)."""
        parts = qualname.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return self.modules[candidate]
        return None

    def resolve(self, module: str, dotted: str,
                _depth: int = 0) -> Optional[str]:
        """Absolute qualname ``dotted`` refers to inside ``module``.

        Follows import aliases and re-export chains across the project.
        Returns ``None`` for names that resolve outside the project (or
        not at all); the result is a project qualname of the form
        ``pkg.mod``, ``pkg.mod.sym`` or ``pkg.mod.Class.method``.
        """
        key = (module, dotted)
        if key in self._resolve_memo:
            return self._resolve_memo[key]
        self._resolve_memo[key] = None  # cycle guard
        result = self._resolve_uncached(module, dotted, _depth)
        self._resolve_memo[key] = result
        return result

    def _resolve_uncached(self, module: str, dotted: str,
                          depth: int) -> Optional[str]:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        info = self.modules.get(module) or self.reference_modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in info.defs:
            base = f"{module}.{head}"
        elif head in info.imports:
            base = self._canonical(info.imports[head], depth + 1)
            if base is None:
                return None
        else:
            # A star import may bind the name; resolve through it.
            for star in info.star_imports:
                if star in self.modules:
                    hit = self.resolve(star, dotted, depth + 1)
                    if hit is not None:
                        return hit
            return None
        return self._canonical(f"{base}.{rest}" if rest else base,
                               depth + 1)

    def canonical(self, qualname: str) -> Optional[str]:
        """Public wrapper: normalise an absolute dotted target to the
        qualname of its defining module (chasing re-exports)."""
        return self._canonical(qualname, 0)

    def _canonical(self, qualname: str, depth: int) -> Optional[str]:
        """Normalise a dotted target to its defining module's qualname."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        if qualname in self.modules:
            return qualname
        owner = self.module_of(qualname)
        if owner is None:
            return None
        rest = qualname[len(owner.name):].lstrip(".")
        if not rest:
            return owner.name
        head, _, tail = rest.partition(".")
        if head in owner.defs:
            # Defined here: attach any method/attr tail verbatim.
            return f"{owner.name}.{rest}"
        if head in owner.imports or owner.star_imports:
            # Re-exported: chase the chain to the defining module.
            resolved = self.resolve(owner.name, rest, depth + 1)
            if resolved is not None:
                return resolved
        return f"{owner.name}.{rest}"

    def resolve_class(self, module: str, dotted: str
                      ) -> Optional[Tuple[ModuleInfo, ClassInfo]]:
        """The (module, class) a dotted name refers to, if a class."""
        qual = self.resolve(module, dotted)
        if qual is None:
            return None
        owner = self.module_of(qual)
        if owner is None:
            return None
        cls_name = qual[len(owner.name):].lstrip(".")
        cls = owner.classes.get(cls_name)
        if cls is None:
            return None
        return owner, cls

    def class_mro_methods(self, owner: ModuleInfo, cls: ClassInfo,
                          _seen: Optional[Set[str]] = None
                          ) -> Dict[str, str]:
        """Method name -> defining qualname, following project bases."""
        seen = _seen if _seen is not None else set()
        key = f"{owner.name}.{cls.name}"
        if key in seen:
            return {}
        seen.add(key)
        methods = {m: f"{key}.{m}" for m in cls.methods}
        for base in cls.bases:
            hit = self.resolve_class(owner.name, base)
            if hit is None:
                continue
            base_owner, base_cls = hit
            for name, qual in self.class_mro_methods(
                    base_owner, base_cls, seen).items():
                methods.setdefault(name, qual)
        return methods

    def is_subclass_of(self, owner: ModuleInfo, cls: ClassInfo,
                       protocol_qual: str,
                       _seen: Optional[Set[str]] = None) -> bool:
        """Does ``cls`` (transitively) list ``protocol_qual`` as a base?"""
        seen = _seen if _seen is not None else set()
        key = f"{owner.name}.{cls.name}"
        if key in seen:
            return False
        seen.add(key)
        for base in cls.bases:
            qual = self.resolve(owner.name, base)
            if qual == protocol_qual:
                return True
            hit = self.resolve_class(owner.name, base)
            if hit and self.is_subclass_of(hit[0], hit[1],
                                           protocol_qual, seen):
                return True
        return False


class ProjectReporter:
    """Violation collector for project rules, honouring inline
    suppressions of the file each violation is reported against."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.violations: List[Violation] = []
        self.suppressed = 0

    def report(self, rule, info: ModuleInfo, node, message: str) -> None:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        ids = info.parsed.suppressions.get(line, ())
        if rule.id in ids or "all" in ids:
            self.suppressed += 1
            return
        self.violations.append(Violation(
            rule_id=rule.id, path=info.parsed.display_path,
            line=line, col=col, message=message))
