"""An approximate, whole-project call graph over the symbol table.

Built once per project pass from the :class:`~tools.megalint.project
.ProjectIndex`, consumed by the call-layering rule (MEGA013) and the
determinism taint pass (MEGA012).  "Approximate" means: edges the
resolver can prove are kept, everything else is dropped — the graph
under-approximates, so rules built on it report no false edges but may
miss dynamic dispatch.  What *is* resolved:

* bare-name calls to module-level functions and classes, through
  import aliases and package re-export chains (``from repro import
  helper`` finds the defining module even when ``repro/__init__`` only
  re-exported the name);
* dotted calls (``mod.func()``, ``alias.Class(...)``) through the same
  resolution;
* ``self.method()`` / ``cls.method()`` against the enclosing class and
  its project-resolved bases;
* *injected callables*: a parameter whose **default value** resolves to
  a project function creates an edge from the enclosing function to
  that default when the parameter is called — the classic way an
  upward dependency hides from import-based layering checks;
* instantiating a class adds an edge to the class and through to its
  ``__init__`` when it has one.

Nested function bodies are attributed to their enclosing top-level
function or method: a clock read inside a closure taints the function
that defines (and presumably calls) it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from tools.megalint.project import ClassInfo, ModuleInfo, ProjectIndex


@dataclass
class FunctionNode:
    """One function, method, or class in the project graph."""

    qualname: str                 # "pkg.mod.func" / "pkg.mod.Cls.meth"
    module: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef / ClassDef
    kind: str                     # "function" | "method" | "class"
    cls: Optional[str] = None     # owning class name for methods


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: caller qualname -> callee qualname."""

    caller: str
    callee: str
    line: int
    #: how the callee was resolved: "direct", "re-export", "self",
    #: "injected-default", or "init" (class -> its __init__).
    via: str


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_own_body(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a def body, descending into nested defs but not classes."""
    stack = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(node, ast.ClassDef):
            continue
        first = False
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


class CallGraph:
    """Forward adjacency over every function/method/class node."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionNode] = {}
        self.edges: Dict[str, List[CallEdge]] = {}

    def out_edges(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls()
        for mod_name in sorted(index.modules):
            info = index.modules[mod_name]
            for name in sorted(info.defs):
                node = info.defs[name]
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph.nodes[f"{mod_name}.{name}"] = FunctionNode(
                        f"{mod_name}.{name}", mod_name, node, "function")
            for cls_name in sorted(info.classes):
                cinfo = info.classes[cls_name]
                cls_qual = f"{mod_name}.{cls_name}"
                graph.nodes[cls_qual] = FunctionNode(
                    cls_qual, mod_name, cinfo.node, "class")
                if "__init__" in cinfo.methods:
                    graph._add_edge(CallEdge(
                        cls_qual, f"{cls_qual}.__init__",
                        cinfo.node.lineno, "init"))
                for meth in sorted(cinfo.methods):
                    graph.nodes[f"{cls_qual}.{meth}"] = FunctionNode(
                        f"{cls_qual}.{meth}", mod_name,
                        cinfo.methods[meth], "method", cls=cls_name)
        for mod_name in sorted(index.modules):
            info = index.modules[mod_name]
            for name in sorted(info.defs):
                node = info.defs[name]
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph._collect_calls(index, info, None,
                                         f"{mod_name}.{name}", node)
            for cls_name in sorted(info.classes):
                cinfo = info.classes[cls_name]
                for meth in sorted(cinfo.methods):
                    m_node = cinfo.methods[meth]
                    if isinstance(m_node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        graph._collect_calls(
                            index, info, cinfo,
                            f"{mod_name}.{cls_name}.{meth}", m_node)
        return graph

    # ------------------------------------------------------------------
    def _add_edge(self, edge: CallEdge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)

    def _injected_defaults(self, index: ProjectIndex, info: ModuleInfo,
                           node) -> Dict[str, Tuple[str, str]]:
        """Param name -> (resolved qualname, raw target) for parameters
        whose default value is a project function/class."""
        out: Dict[str, Tuple[str, str]] = {}
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            self._record_default(index, info, arg.arg, default, out)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._record_default(index, info, arg.arg, default, out)
        return out

    def _record_default(self, index: ProjectIndex, info: ModuleInfo,
                        param: str, default: ast.AST,
                        out: Dict[str, Tuple[str, str]]) -> None:
        flat = _dotted(default)
        if flat is None:
            return
        resolved = index.resolve(info.name, flat)
        if resolved is not None and resolved in self.nodes:
            out[param] = (resolved, flat)

    def _collect_calls(self, index: ProjectIndex, info: ModuleInfo,
                       cinfo: Optional[ClassInfo], caller: str,
                       fn_node) -> None:
        injected = self._injected_defaults(index, info, fn_node)
        mro_methods: Dict[str, str] = {}
        if cinfo is not None:
            mro_methods = index.class_mro_methods(info, cinfo)
        for node in _walk_own_body(fn_node):
            if not isinstance(node, ast.Call):
                continue
            flat = _dotted(node.func)
            if flat is None:
                continue
            resolved, via = self._resolve_call(
                index, info, flat, injected, mro_methods)
            if resolved is None:
                continue
            self._add_edge(CallEdge(caller, resolved, node.lineno, via))

    def _resolve_call(self, index: ProjectIndex, info: ModuleInfo,
                      flat: str, injected: Dict[str, Tuple[str, str]],
                      mro_methods: Dict[str, str]
                      ) -> Tuple[Optional[str], str]:
        head, _, rest = flat.partition(".")
        if head in ("self", "cls") and rest and "." not in rest:
            target = mro_methods.get(rest)
            return (target, "self") if target else (None, "")
        if not rest and head in injected:
            return injected[head][0], "injected-default"
        resolved = index.resolve(info.name, flat)
        if resolved is None or resolved not in self.nodes:
            return None, ""
        # Distinguish a plain import from a re-export chase: the raw
        # alias target differing from the resolution means the name
        # travelled through at least one package __init__.
        raw = info.imports.get(head)
        via = "direct"
        if raw is not None:
            raw_target = f"{raw}.{rest}" if rest else raw
            if resolved != raw_target:
                via = "re-export"
        return resolved, via
