"""MEGA008 — ``__all__`` must agree with the names a module defines.

``tests/integration/test_api_hygiene.py`` checks this dynamically for
the packages it knows about; this rule makes the same contract static,
import-free, and universal: every string in a literal ``__all__`` must
be bound at module top level (def / class / import / assignment), and
no name may appear twice.  A stale entry breaks ``from pkg import *``
and lies to readers about the public surface.

Modules that build ``__all__`` dynamically (concatenation of other
lists, loops, ``+=`` of names) are skipped — static analysis cannot
judge them, and the dynamic hygiene test still covers the shipped
packages.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from tools.megalint.registry import Rule, register


def _bound_names(body) -> Set[str]:
    """Names bound by top-level statements (descending into if/try)."""
    names: Set[str] = set()
    for stmt in _flatten(body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    names.add("*")  # star import: unknowable surface
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(stmt.target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            names.update(_target_names(stmt.target))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
    return names


def _flatten(body) -> Iterator[ast.stmt]:
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While,
                             ast.With, ast.AsyncWith)):
            yield from _flatten(stmt.body)
            yield from _flatten(getattr(stmt, "orelse", []))
        elif isinstance(stmt, ast.Try):
            yield from _flatten(stmt.body)
            for handler in stmt.handlers:
                yield from _flatten(handler.body)
            yield from _flatten(stmt.orelse)
            yield from _flatten(stmt.finalbody)


def _target_names(target) -> Set[str]:
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _literal_all(stmt) -> Optional[ast.expr]:
    """The value node when ``stmt`` is a plain ``__all__ = ...``."""
    if isinstance(stmt, ast.Assign):
        if any(isinstance(t, ast.Name) and t.id == "__all__"
               for t in stmt.targets):
            return stmt.value
    if (isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"):
        return stmt.value
    return None


@register
class DunderAllRule(Rule):
    id = "MEGA008"
    name = "dunder-all"
    rationale = ("every __all__ entry must name something the module "
                 "actually binds; no duplicates")

    def end_module(self, ctx) -> None:
        assignments = [(stmt, value) for stmt in ctx.tree.body
                       for value in [_literal_all(stmt)]
                       if value is not None]
        if not assignments:
            return
        # Any __all__ mutation elsewhere (augassign, method calls) makes
        # the surface dynamic: skip rather than guess.
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"):
                return
        stmt, value = assignments[-1]
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # dynamically built: not statically checkable
        entries = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                ctx.report(self, elt,
                           "__all__ entries must be string literals")
                return
            entries.append((elt, elt.value))
        bound = _bound_names(ctx.tree.body)
        if "*" in bound:
            return  # star import: cannot enumerate the real surface
        seen = set()
        for elt, name in entries:
            if name in seen:
                ctx.report(self, elt,
                           f"duplicate __all__ entry '{name}'")
                continue
            seen.add(name)
            if name == "__version__" or name in bound:
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # module dunders are implicitly defined
            ctx.report(self, elt,
                       f"__all__ exports '{name}' but the module never "
                       "binds it — remove the entry or define/import "
                       "the name")
