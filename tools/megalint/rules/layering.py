"""MEGA001 — import layering.

The scheduling substrate (``repro.core``/``repro.graph``/``repro.tensor``)
must never import the layers built on top of it (``repro.models``,
``repro.train``, ``repro.pipeline``, ``repro.distributed``).  An upward
import creates a cycle-in-waiting and couples Algorithm 1's correctness
to training-loop code; the dependency arrows in
``docs/architecture.md`` only point downward.
"""

from __future__ import annotations

import ast

from tools.megalint.registry import Rule, register


def _resolve_relative(ctx, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    base_parts = ctx.package.split(".") if ctx.package else []
    # level=1 means "this package"; each extra level strips one parent.
    strip = node.level - 1
    if strip:
        base_parts = base_parts[:-strip] if strip < len(base_parts) else []
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


@register
class ImportLayeringRule(Rule):
    id = "MEGA001"
    name = "import-layering"
    rationale = ("low layers (core/graph/tensor) must not import high "
                 "layers (models/train/pipeline/distributed)")

    def enabled_for(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.low_layers)

    def _check_target(self, node: ast.AST, ctx, target: str) -> None:
        for high in ctx.config.high_layers:
            if target == high or target.startswith(high + "."):
                low = next(p for p in ctx.config.low_layers
                           if ctx.in_modules([p]))
                ctx.report(self, node,
                           f"low-layer module '{ctx.module}' (layer "
                           f"'{low}') imports high-layer '{target}' — "
                           "invert the dependency or move the shared "
                           "piece down")
                return

    def visit_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            self._check_target(node, ctx, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        target = _resolve_relative(ctx, node)
        if target:
            self._check_target(node, ctx, target)
