"""MEGA001 — import layering.

The scheduling substrate (``repro.core``/``repro.graph``/``repro.tensor``)
must never import the layers built on top of it (``repro.models``,
``repro.train``, ``repro.pipeline``, ``repro.distributed``).  An upward
import creates a cycle-in-waiting and couples Algorithm 1's correctness
to training-loop code.  Above both sit the *top layers* — an **ordered**
list (``repro.serve`` < ``repro.cluster`` < ``repro.bench``): pure
consumers that may import anything below and any *earlier* top layer,
while nothing below (or earlier) imports them.  So serve never knows
the cluster exists, the cluster may embed serve engines, and bench may
drive both — and a user who never serves never pays for the serving
stack.  The dependency arrows in ``docs/architecture.md`` only point
downward.
"""

from __future__ import annotations

import ast

from tools.megalint.registry import Rule, register


def _resolve_relative(ctx, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    base_parts = ctx.package.split(".") if ctx.package else []
    # level=1 means "this package"; each extra level strips one parent.
    strip = node.level - 1
    if strip:
        base_parts = base_parts[:-strip] if strip < len(base_parts) else []
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


def _layer_of(target: str, layers) -> str:
    for layer in layers:
        if target == layer or target.startswith(layer + "."):
            return layer
    return ""


@register
class ImportLayeringRule(Rule):
    id = "MEGA001"
    name = "import-layering"
    rationale = ("low layers (core/graph/tensor) must not import high "
                 "layers (models/train/pipeline/distributed), no layer "
                 "below may import a top layer, and a top layer "
                 "(serve < cluster < bench, in order) may only import "
                 "earlier top layers")

    def enabled_for(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.low_layers
                              + ctx.config.high_layers
                              + ctx.config.top_layers)

    def _check_target(self, node: ast.AST, ctx, target: str) -> None:
        if ctx.in_modules(ctx.config.low_layers):
            own_kind = "low"
            own = next(p for p in ctx.config.low_layers
                       if ctx.in_modules([p]))
            banned = ctx.config.high_layers + ctx.config.top_layers
        elif ctx.in_modules(ctx.config.high_layers):
            own_kind = "high"
            own = next(p for p in ctx.config.high_layers
                       if ctx.in_modules([p]))
            banned = ctx.config.top_layers
        else:
            # Top layers are ordered: each may import only the ones
            # registered before it (serve < cluster < bench).
            own_kind = "top"
            own = next(p for p in ctx.config.top_layers
                       if ctx.in_modules([p]))
            banned = ctx.config.top_layers[
                ctx.config.top_layers.index(own) + 1:]
        hit = _layer_of(target, banned)
        if not hit:
            return
        kind = ("top-layer" if _layer_of(target, ctx.config.top_layers)
                else "high-layer")
        hint = ("top layers import only earlier top layers"
                if own_kind == "top" else
                "invert the dependency or move the shared piece down")
        ctx.report(self, node,
                   f"{own_kind}-layer module '{ctx.module}' (layer "
                   f"'{own}') imports {kind} '{target}' — {hint}")

    def visit_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            self._check_target(node, ctx, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        target = _resolve_relative(ctx, node)
        if target:
            self._check_target(node, ctx, target)
