"""MEGA002 — determinism of schedule-feeding code.

``repro.pipeline`` caches Algorithm 1 schedules under a content hash of
(graph, config, code version).  That key is only valid if recomputing
the schedule is bit-identical — which dies the moment set iteration
order or the legacy global-state ``np.random`` API leaks into an
ordered output.  Two sub-checks:

* the legacy unseeded ``np.random.*`` module API is banned everywhere
  (the whole repo passes explicit ``np.random.Generator`` objects);
* in the determinism-scoped modules, iterating a *syntactic* set
  (``set(...)``, a set display, or a set comprehension) into any
  ordered sink — ``list``/``tuple``/``np.array`` conversion, a ``for``
  statement, an ordered comprehension, an argument to an
  order-sensitive call, or ``set.pop()`` — is flagged.  Wrap the set in
  ``sorted(...)`` (or dedup in insertion order) instead.

CPython happens to iterate int-sets reproducibly, which is exactly why
these bugs survive review: they pass every test until a hash-seed,
platform, or interpreter change silently reorders edges and poisons
every cached schedule.
"""

from __future__ import annotations

import ast

from tools.megalint.astutil import call_name, dotted_name, is_setish
from tools.megalint.registry import Rule, register

#: The legacy global-state API (seeded at interpreter level, shared
#: mutable state).  ``np.random.default_rng`` / ``Generator`` /
#: bit-generator constructors are the sanctioned replacements.
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "random", "random_sample", "ranf", "sample",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "uniform", "normal", "standard_normal", "binomial", "poisson",
    "beta", "gamma", "exponential", "geometric", "multinomial",
    "get_state", "set_state",
})

#: Callees for which consuming a set argument is order-insensitive.
ORDER_SAFE_CALLEES = frozenset({
    "sorted", "len", "set", "frozenset", "min", "max", "sum",
    "any", "all", "bool", "isinstance", "issubset", "union",
    "intersection", "difference", "symmetric_difference", "update",
    "isdisjoint",
})


@register
class DeterminismRule(Rule):
    id = "MEGA002"
    name = "determinism"
    rationale = ("schedule/cache-key code must be bit-deterministic: no "
                 "legacy np.random, no set-iteration-order in ordered "
                 "outputs")

    def _scoped(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.determinism_modules)

    # -- legacy np.random (whole repo) ---------------------------------
    def visit_Call(self, node: ast.Call, ctx) -> None:
        flat = dotted_name(node.func)
        if flat is not None:
            parts = flat.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] in LEGACY_NP_RANDOM):
                ctx.report(self, node,
                           f"legacy global-state RNG call '{flat}' — pass "
                           "an explicit np.random.Generator "
                           "(np.random.default_rng(seed)) instead")
                return
        if not self._scoped(ctx):
            return
        self._check_ordered_sink(node, ctx)
        self._check_set_pop(node, ctx)

    def _check_ordered_sink(self, node: ast.Call, ctx) -> None:
        callee = call_name(node)
        if callee in ORDER_SAFE_CALLEES:
            return
        for arg in node.args:
            target = arg
            if isinstance(target, ast.Starred):
                target = target.value
            if is_setish(target):
                ctx.report(self, target,
                           "unordered set passed to "
                           f"'{callee or '<call>'}' — iteration order "
                           "leaks into the output; wrap in sorted(...) "
                           "or build an ordered sequence")

    def _check_set_pop(self, node: ast.Call, ctx) -> None:
        """``s.pop()`` on a name locally bound to a set literal/call."""
        func = node.func
        if (not isinstance(func, ast.Attribute) or func.attr != "pop"
                or node.args or node.keywords):
            return
        if not isinstance(func.value, ast.Name):
            return
        name = func.value.id
        for scope in ctx.ancestors(node):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Module)):
                if name in _setish_bindings(scope):
                    ctx.report(self, node,
                               f"'{name}.pop()' removes an arbitrary "
                               "element of a set — select "
                               "deterministically (e.g. min(...) + "
                               "discard)")
                return

    # -- iteration statements ------------------------------------------
    def visit_For(self, node: ast.For, ctx) -> None:
        if self._scoped(ctx) and is_setish(node.iter):
            ctx.report(self, node.iter,
                       "for-loop directly over an unordered set — "
                       "iterate sorted(...) so downstream order is "
                       "deterministic")

    def _check_comp(self, node, ctx, kind: str) -> None:
        if self._scoped(ctx) and is_setish(node.generators[0].iter):
            ctx.report(self, node.generators[0].iter,
                       f"{kind} built by iterating an unordered set — "
                       "wrap the set in sorted(...)")

    def visit_ListComp(self, node: ast.ListComp, ctx) -> None:
        self._check_comp(node, ctx, "list")

    def visit_DictComp(self, node: ast.DictComp, ctx) -> None:
        self._check_comp(node, ctx, "dict")


def _setish_bindings(scope) -> set:
    """Names assigned a syntactic set anywhere in ``scope``'s own body."""
    names = set()
    for stmt in ast.walk(scope):
        if isinstance(stmt, ast.Assign) and is_setish(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                and is_setish(stmt.value)
                and isinstance(stmt.target, ast.Name)):
            names.add(stmt.target.id)
    return names
