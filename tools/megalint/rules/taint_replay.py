"""MEGA012 — determinism taint must not reach a replay surface.

The per-file rules guard the *bodies* of replay-surface builders
(MEGA011) and cache-key code (MEGA004), but the replay contract is
transitive: ``as_dict`` calling a helper that calls ``time.time()`` is
exactly as broken as reading the clock inline, and a project that
grows helpers faster than reviewers can trace them needs the checker
to do the tracing.  This rule runs the interprocedural taint pass
(:mod:`tools.megalint.taint`) over the approximate call graph:

* **sources** — wall-clock reads, ``random``/``os.urandom``/``uuid``/
  legacy ``np.random`` RNG, environment reads, unsorted filesystem
  enumeration, set-order-dependent iteration;
* **sinks** — ``as_dict``/``replay_surface``/``*_replay_surface`` in
  the determinism/ledger scopes, every function of the purity modules
  (``pipeline.hashing`` inputs), and the configured
  ``taint-sink-functions`` (``FaultPlan.roll``);
* a sink is reported when any call chain from it reaches an
  *unsanctioned* source, with the shortest chain spelled out.

Sanctioned impurities are declared on the source line, with a
mandatory justification::

    base = os.environ.get("REPRO_CACHE_DIR")  # megalint: sanctioned-impurity=env: picks the cache directory, never enters a key

A declaration without a justification (or naming an unknown kind) is
itself a violation — impurities are declared, never silently
suppressed.
"""

from __future__ import annotations

from tools.megalint.registry import ProjectRule, register
from tools.megalint.taint import TaintAnalysis, sink_functions


@register
class DeterminismTaintRule(ProjectRule):
    id = "MEGA012"
    name = "determinism-taint"
    rationale = ("no call chain from a replay surface, cache-key path, "
                 "or fault-plan roll may reach a wall-clock/RNG/env/"
                 "set-order source unless the impurity is declared "
                 "sanctioned with a justification")

    def check_project(self, index, reporter) -> None:
        graph = index.callgraph()
        analysis = TaintAnalysis(index, graph)
        for bad in analysis.bad_declarations:
            info = index.modules[bad.module]
            reporter.report(self, info, bad.line, bad.problem)
        for qualname, sink_kind in sink_functions(index, graph,
                                                  index.config):
            chain = analysis.trace(qualname)
            if chain is None:
                continue
            fn = graph.nodes[qualname]
            info = index.modules[fn.module]
            reporter.report(
                self, info, fn.node,
                f"{sink_kind} '{qualname}' is determinism-tainted: "
                f"{chain.describe()} — make the chain pure, or mark "
                "the source line '# megalint: sanctioned-impurity="
                f"{chain.source.kind}: <why>'")
