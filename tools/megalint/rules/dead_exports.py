"""MEGA014 — dead public exports: ``__all__`` names nobody uses.

``__all__`` is a promise: "this is the surface we support".  A name
that sits in ``__all__`` but is never imported, re-exported, or
attribute-referenced anywhere in the project — source, tools, tests,
examples, benchmarks — is a promise nobody collects on: it widens the
API that refactors must preserve, pads ``import *``, and usually marks
a feature that was removed everywhere except its export line.

MEGA008 checks each ``__all__`` against its *own* module (every entry
must be bound); this rule is its cross-module complement: every entry
must be *referenced* somewhere else.  References are resolved through
the project symbol table, so importing a name from a package
``__init__`` keeps the defining module's export alive, and a
star-import of a module keeps that module's whole export list alive.
The reference universe includes the configured ``reference-roots``
(tests/examples/benchmarks by default), which are indexed but never
linted — public API used only by tests is still used.
"""

from __future__ import annotations

import ast
from typing import Dict, Set

from tools.megalint.project import (
    ModuleInfo,
    ProjectIndex,
    _resolve_relative_import,
)
from tools.megalint.registry import ProjectRule, register


def _dotted(node: ast.AST):
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_references(index: ProjectIndex, info: ModuleInfo) -> Set[str]:
    """Resolved qualnames this module refers to (imports + uses)."""
    refs: Set[str] = set()
    # All imports, including ones nested in function bodies (the symbol
    # table only indexes top-level imports, but a lazy
    # ``from repro.core import schedule_report`` inside a CLI handler
    # is a use all the same).
    raw_imports = set(info.imports.values())
    is_package = info.parsed.path.name == "__init__.py"
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            raw_imports.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative_import(info.name, is_package, node)
            if target:
                raw_imports.add(target)
                raw_imports.update(f"{target}.{alias.name}"
                                   for alias in node.names
                                   if alias.name != "*")
    for raw in raw_imports:
        refs.add(raw)
        canonical = index.canonical(raw)
        if canonical:
            refs.add(canonical)
    for star in info.star_imports:
        target = index.modules.get(star)
        if target is not None and target.exports is not None:
            for _, name in target.exports:
                refs.add(f"{star}.{name}")
                canonical = index.canonical(f"{star}.{name}")
                if canonical:
                    refs.add(canonical)
    # Attribute chains and bare-name uses, outermost chain only.
    inner = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Attribute):
            inner.add(id(node.value))
    for node in ast.walk(info.tree):
        flat = None
        if isinstance(node, ast.Attribute) and id(node) not in inner:
            flat = _dotted(node)
        elif (isinstance(node, ast.Name) and id(node) not in inner
                and isinstance(node.ctx, ast.Load)):
            flat = node.id
        if flat is None:
            continue
        resolved = index.resolve(info.name, flat)
        if resolved:
            refs.add(resolved)
    return refs


@register
class DeadExportRule(ProjectRule):
    id = "MEGA014"
    name = "dead-export"
    rationale = ("every __all__ entry must be referenced somewhere in "
                 "the project (src, tools, or the reference roots) — "
                 "an unused export is unsupported API surface")

    def check_project(self, index, reporter) -> None:
        references: Dict[str, Set[str]] = {}
        for name in sorted(index.modules):
            references[name] = _module_references(index,
                                                  index.modules[name])
        for name in sorted(index.reference_modules):
            references[name] = _module_references(
                index, index.reference_modules[name])

        for mod_name in sorted(index.modules):
            info = index.modules[mod_name]
            if info.exports is None:
                continue
            for elt, export in info.exports:
                qual = f"{mod_name}.{export}"
                canonical = index.canonical(qual) or qual
                if self._is_referenced(references, mod_name, qual,
                                       canonical):
                    continue
                reporter.report(
                    self, info, elt,
                    f"__all__ export '{export}' of '{mod_name}' is "
                    "never referenced anywhere in the project "
                    "(including tests/examples/benchmarks) — remove "
                    "the export or the dead code behind it")

    @staticmethod
    def _is_referenced(references: Dict[str, Set[str]], owner: str,
                       qual: str, canonical: str) -> bool:
        for module, refs in references.items():
            if module == owner:
                continue
            for ref in refs:
                if (ref == qual or ref.startswith(qual + ".")
                        or ref == canonical
                        or ref.startswith(canonical + ".")):
                    return True
        return False
