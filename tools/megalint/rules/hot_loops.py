"""MEGA003 — hot kernels must stay vectorised.

The paper's entire speedup comes from regular memory access: diagonal
attention turns ragged per-edge work into dense banded array ops.  A
Python-level ``for i in range(...)`` loop inside a kernel module
(``repro.tensor.functional``, ``repro.models.layers``) re-introduces
per-element interpreter overhead 100-1000x slower than the ufunc path
and silently deoptimises every model built on top.

Flagged inside kernel modules:

* ``for`` statements iterating ``range(...)`` / ``enumerate(...)``
  (per-index element loops);
* any ``for``/``while`` nested inside another loop (quadratic scalar
  work);
* bare ``while`` loops.

Loops over a handful of layer/tensor objects (``for t in tensors``) are
legitimate and not flagged.  Where a scalar loop is genuinely required,
suppress with ``# megalint: disable=MEGA003`` and a justification.
"""

from __future__ import annotations

import ast

from tools.megalint.registry import Rule, register

_HINT = ("use numpy ufuncs / segment primitives (np.add.at, "
         "gather_rows, segment_sum) or suppress with a justification")


@register
class HotLoopRule(Rule):
    id = "MEGA003"
    name = "hot-loop"
    rationale = ("kernel modules must stay vectorised: no per-element "
                 "python loops")

    def enabled_for(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.kernel_modules)

    def _inside_loop(self, node, ctx) -> bool:
        return any(isinstance(a, (ast.For, ast.While))
                   for a in ctx.ancestors(node))

    def visit_For(self, node: ast.For, ctx) -> None:
        if self._inside_loop(node, ctx):
            ctx.report(self, node,
                       f"nested python loop in kernel module — {_HINT}")
            return
        it = node.iter
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id in ("range", "enumerate")):
            ctx.report(self, node,
                       f"per-index '{it.func.id}' loop in kernel module "
                       f"— {_HINT}")

    def visit_While(self, node: ast.While, ctx) -> None:
        if self._inside_loop(node, ctx):
            ctx.report(self, node,
                       f"nested python loop in kernel module — {_HINT}")
        else:
            ctx.report(self, node,
                       f"while loop in kernel module — {_HINT}")
