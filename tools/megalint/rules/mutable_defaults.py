"""MEGA006 — no mutable default arguments (including dataclass fields).

A ``def f(acc=[])`` default is evaluated once and shared across every
call; in a codebase whose pipeline ships config objects to worker
processes and caches results by value, aliased mutable state is a
correctness bug waiting for its second caller.  Dataclass class-level
defaults get the same treatment: ``field(default_factory=list)`` is
the sanctioned spelling (some mutable defaults crash at class-creation
time, but e.g. a shared ``np.ndarray`` or ``deque`` would not).
"""

from __future__ import annotations

import ast

from tools.megalint.astutil import decorator_is, is_mutable_literal
from tools.megalint.registry import Rule, register


@register
class MutableDefaultRule(Rule):
    id = "MEGA006"
    name = "mutable-default"
    rationale = ("mutable default arguments and dataclass field defaults "
                 "alias state across calls/instances")

    def _check_function(self, node, ctx) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if is_mutable_literal(default):
                ctx.report(self, default,
                           f"mutable default argument in '{node.name}' — "
                           "use None and create the container inside, "
                           "or a tuple/frozenset")

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._check_function(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx) -> None:
        self._check_function(node, ctx)

    def visit_ClassDef(self, node: ast.ClassDef, ctx) -> None:
        if not any(decorator_is(d, "dataclass")
                   for d in node.decorator_list):
            return
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is not None and is_mutable_literal(value):
                ctx.report(self, value,
                           f"mutable dataclass field default in "
                           f"'{node.name}' — use "
                           "field(default_factory=...)")
