"""MEGA015 — divergent duck-types: look-alikes of a protocol that
drift from its method set.

The serving stack is glued together structurally, not nominally:
``ServerEngine`` accepts "anything with a ``resolve(graph) -> (path,
hit)``" (the :class:`~repro.serve.server.ScheduleStore` shape — the
cluster's two-tier cache view duck-types it), and the cluster routes
through "anything with a ``choose(key, alive, ring)``"
(:class:`~repro.cluster.routing.LoadBalancePolicy`).  Nothing checks
those shapes at runtime until a request is already in flight — a
policy that spells its method ``chose``, or a store whose ``resolve``
grew an extra required parameter, raises ``AttributeError``/
``TypeError`` mid-serve instead of failing the build.

For each configured protocol class this rule checks every class in the
checked tree that either subclasses the protocol (anywhere) or
structurally duck-types it — defines all of its public methods *and*
lives under the protocol's top-level package, so a linter helper that
happens to define ``resolve`` isn't mistaken for a schedule store:

* **signature drift** — a shared method whose positional parameters
  differ from the protocol's (``*args``/``**kwargs`` on the
  implementation side match anything);
* **near-miss methods** (subclasses only) — a public method whose name
  is within edit distance 2 of a protocol method the subclass never
  overrides: the classic typo that silently inherits the base class's
  ``NotImplementedError`` stub.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from tools.megalint.project import ClassInfo, ModuleInfo, ProjectIndex
from tools.megalint.registry import ProjectRule, register


def _public_methods(cls: ClassInfo) -> List[str]:
    return sorted(m for m in cls.methods if not m.startswith("_"))


def _positional_params(node) -> Optional[Tuple[List[str], bool]]:
    """(param names after self/cls, accepts-anything) of a def node."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    wildcard = args.vararg is not None or args.kwarg is not None
    return names, wildcard


def _edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein distance, capped (enough for near-miss detection)."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + (ca != cb)))
        if min(current) > cap:
            return cap + 1
        previous = current
    return previous[-1]


@register
class DuckTypeDriftRule(ProjectRule):
    id = "MEGA015"
    name = "duck-type-drift"
    rationale = ("classes duck-typing a configured protocol "
                 "(ScheduleStore, LoadBalancePolicy) must match its "
                 "method names and signatures — drift surfaces as "
                 "AttributeError/TypeError mid-serve instead of at "
                 "build time")

    def check_project(self, index, reporter) -> None:
        for proto_qual in index.config.protocol_classes:
            resolved = index.canonical(proto_qual) or proto_qual
            owner = index.module_of(resolved)
            if owner is None:
                continue
            cls_name = resolved[len(owner.name):].lstrip(".")
            proto = owner.classes.get(cls_name)
            if proto is None:
                continue
            self._check_protocol(index, reporter, owner, proto, resolved)

    # ------------------------------------------------------------------
    def _check_protocol(self, index: ProjectIndex, reporter,
                        proto_owner: ModuleInfo, proto: ClassInfo,
                        proto_qual: str) -> None:
        proto_methods = _public_methods(proto)
        if not proto_methods:
            return
        proto_surface = set(proto_methods) | set(proto.attrs)
        proto_package = proto_qual.split(".")[0]
        for mod_name in sorted(index.modules):
            info = index.modules[mod_name]
            in_scope = mod_name.split(".")[0] == proto_package
            for cls_name in sorted(info.classes):
                cls = info.classes[cls_name]
                if f"{mod_name}.{cls_name}" == proto_qual:
                    continue
                is_sub = index.is_subclass_of(info, cls, proto_qual)
                defines_all = (in_scope and
                               all(m in cls.methods for m in proto_methods))
                if not is_sub and not defines_all:
                    continue
                self._check_signatures(reporter, info, cls, proto,
                                       proto_methods, proto_qual)
                if is_sub:
                    self._check_near_misses(reporter, info, cls,
                                            proto_methods, proto_surface,
                                            proto_qual)

    def _check_signatures(self, reporter, info: ModuleInfo,
                          cls: ClassInfo, proto: ClassInfo,
                          proto_methods: List[str],
                          proto_qual: str) -> None:
        for meth in proto_methods:
            impl = cls.methods.get(meth)
            if impl is None:
                continue
            expected = _positional_params(proto.methods[meth])
            actual = _positional_params(impl)
            if expected is None or actual is None:
                continue
            if actual[1]:
                continue  # *args/**kwargs accepts the protocol shape
            if actual[0] != expected[0]:
                reporter.report(
                    self, info, impl,
                    f"'{cls.name}.{meth}' drifts from protocol "
                    f"'{proto_qual}': parameters "
                    f"({', '.join(actual[0]) or 'none'}) != protocol's "
                    f"({', '.join(expected[0]) or 'none'}) — callers "
                    "hold the protocol shape, so this fails at call "
                    "time")

    def _check_near_misses(self, reporter, info: ModuleInfo,
                           cls: ClassInfo, proto_methods: List[str],
                           proto_surface, proto_qual: str) -> None:
        unoverridden = [m for m in proto_methods if m not in cls.methods]
        for extra in _public_methods(cls):
            if extra in proto_surface:
                continue
            for missing in unoverridden:
                if _edit_distance(extra, missing) <= 2:
                    reporter.report(
                        self, info, cls.methods[extra],
                        f"'{cls.name}.{extra}' looks like a typo of "
                        f"protocol method '{missing}' "
                        f"('{proto_qual}'), which this subclass never "
                        "overrides — the base stub would raise at "
                        "call time")
