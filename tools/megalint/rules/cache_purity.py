"""MEGA004 — cache-key code must be a pure function of its inputs.

``repro.pipeline.hashing`` derives content-addressed keys and
``repro.pipeline.cache`` stores payloads under them; the whole design
(and the Cached Operator Reordering lesson it follows) is only sound if
that computation reads *nothing* but its arguments.  Wall-clock time,
environment variables, and filesystem enumeration order are the three
classic impurities that turn "same inputs" into "different key" — or
worse, the same key for different payloads.

Flagged inside the purity-scoped modules:

* ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` and
  friends (any wall-clock read);
* ``os.environ`` / ``os.getenv`` reads;
* ``os.listdir`` / ``os.scandir`` / ``Path.iterdir`` / ``glob`` /
  ``rglob`` unless the call is wrapped in ``sorted(...)`` — directory
  order is filesystem-dependent.

A deliberate impurity (e.g. an env var choosing the cache *location*,
which never enters a key) gets an inline
``# megalint: disable=MEGA004`` with a justification.
"""

from __future__ import annotations

import ast

from tools.megalint.astutil import dotted_name
from tools.megalint.registry import Rule, register

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

_ENV_CALLS = frozenset({"os.getenv", "os.environb"})

_LISTING_CALLS = frozenset({"os.listdir", "os.scandir"})

#: Method names distinctive enough to flag on any receiver.
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


@register
class CachePurityRule(Rule):
    id = "MEGA004"
    name = "cache-purity"
    rationale = ("cache key/store code may not read wall-clock, env vars, "
                 "or unsorted directory listings")

    def enabled_for(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.purity_modules)

    def _sorted_wrapped(self, node: ast.AST, ctx) -> bool:
        """Is ``node`` (transitively) an argument of a sorted(...) call?"""
        return any(isinstance(a, ast.Call)
                   and isinstance(a.func, ast.Name)
                   and a.func.id == "sorted"
                   for a in ctx.ancestors(node))

    def visit_Attribute(self, node: ast.Attribute, ctx) -> None:
        if dotted_name(node) == "os.environ":
            ctx.report(self, node,
                       "reads os.environ in cache-purity scope — pass "
                       "configuration in explicitly so keys stay a pure "
                       "function of their inputs")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        flat = dotted_name(node.func)
        if flat in _CLOCK_CALLS:
            ctx.report(self, node,
                       f"wall-clock read '{flat}()' in cache-purity scope "
                       "— timestamps must never influence keys or "
                       "payloads")
            return
        if flat in _ENV_CALLS:
            ctx.report(self, node,
                       f"environment read '{flat}()' in cache-purity "
                       "scope — pass configuration in explicitly")
            return
        is_listing = flat in _LISTING_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS)
        if is_listing and not self._sorted_wrapped(node, ctx):
            what = flat or node.func.attr  # type: ignore[union-attr]
            ctx.report(self, node,
                       f"directory enumeration '{what}(...)' without "
                       "sorted(...) — filesystem order is "
                       "platform-dependent")
