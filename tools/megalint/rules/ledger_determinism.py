"""MEGA011 — replay-surface dicts must stay wall-clock-free.

The benchmark ledgers (``BENCH_*.json``) and the serve/pipeline stats
dicts promise a byte-identical *replay surface*: run the same tree with
the same seed twice and the surface bytes match exactly.  That promise
dies the moment a wall-clock read or a timestamp-ish key slips into the
functions that build those surfaces — the classic regression is someone
"helpfully" adding ``"wall_s": time.perf_counter() - t0`` to a stats
``as_dict()``.  Wall-clock numbers belong in the ledger's *excluded*
blocks (the per-entry ``wall`` dict, the top-level ``environment``),
which are produced by differently-named functions on purpose.

Flagged inside the ledger-scoped modules, but only within functions
named ``as_dict``, ``replay_surface``, or ``*_replay_surface``:

* any wall-clock read (``time.time``/``perf_counter``/
  ``datetime.now`` and friends — the MEGA004 clock-call set);
* a dict literal carrying a wall-ish key: ``timestamp``, ``hostname``,
  ``created_at``, ``date``, ``now``, or anything starting ``wall``.
"""

from __future__ import annotations

import ast

from tools.megalint.astutil import dotted_name
from tools.megalint.registry import Rule, register
from tools.megalint.rules.cache_purity import _CLOCK_CALLS

#: Function names whose return value is (part of) a replay surface.
_REPLAY_FUNCS = frozenset({"as_dict", "replay_surface"})

_BANNED_KEYS = frozenset({"timestamp", "hostname", "created_at", "date",
                          "now"})


def _is_replay_func(name: str) -> bool:
    return name in _REPLAY_FUNCS or name.endswith("_replay_surface")


def _banned_key(key: str) -> bool:
    return key in _BANNED_KEYS or key.startswith("wall")


@register
class LedgerDeterminismRule(Rule):
    id = "MEGA011"
    name = "ledger-determinism"
    rationale = ("replay-surface builders (as_dict/replay_surface) may "
                 "not read wall clocks or emit wall-ish keys — wall "
                 "time belongs in the excluded wall/environment blocks")

    def enabled_for(self, ctx) -> bool:
        return ctx.in_modules(ctx.config.ledger_modules)

    def _enclosing_replay_func(self, node: ast.AST, ctx):
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                if _is_replay_func(ancestor.name):
                    return ancestor
                return None  # nearest function wins; nesting stops here
        return None

    def visit_Call(self, node: ast.Call, ctx) -> None:
        flat = dotted_name(node.func)
        if flat not in _CLOCK_CALLS:
            return
        func = self._enclosing_replay_func(node, ctx)
        if func is not None:
            ctx.report(self, node,
                       f"wall-clock read '{flat}()' inside replay-"
                       f"surface builder '{func.name}' — move it to "
                       "the wall/environment block")

    def visit_Dict(self, node: ast.Dict, ctx) -> None:
        func = self._enclosing_replay_func(node, ctx)
        if func is None:
            return
        for key in node.keys:
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and _banned_key(key.value)):
                ctx.report(self, key,
                           f"wall-ish key {key.value!r} in replay-"
                           f"surface builder '{func.name}' — replay "
                           "surfaces must be wall-clock-free; use the "
                           "excluded wall/environment blocks")
