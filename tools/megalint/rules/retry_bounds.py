"""MEGA010 — no unbounded retry loops.

The resilience layer's contract is *bounded* recovery: every retry
loop must give up after a fixed number of attempts
(:class:`repro.resilience.RetryPolicy` exists precisely for this).  A
``while True`` loop whose ``except`` handler just ``continue``\\ s never
gives up — a persistent fault (bad disk, poisoned input, dead peer)
turns it into a busy-wait that hangs the pipeline forever instead of
failing loudly.

Flagged: a constant-true ``while`` loop containing an ``except``
handler that reaches ``continue`` with no ``raise`` or ``break``
anywhere in the handler — i.e. no path that ever stops retrying.
Handlers that re-raise after an attempt bound (``if n >= 3: raise``)
or break out are clean, as are counted ``for``-loops
(:func:`repro.resilience.call_with_retry`'s shape).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.megalint.registry import Rule, register


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _own_statements(body) -> Iterator[ast.stmt]:
    """Statements belonging to this block's control flow.

    Descends into ``if``/``with``/``try`` but not into nested loops
    (whose ``continue``/``break`` bind to the inner loop) or nested
    function definitions.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor,
                             ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for attr in ("body", "orelse", "finalbody"):
            yield from _own_statements(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _own_statements(handler.body)


def _handler_retries_forever(handler: ast.ExceptHandler) -> bool:
    stmts = list(_own_statements(handler.body))
    retries = any(isinstance(s, ast.Continue) for s in stmts)
    gives_up = any(isinstance(s, (ast.Raise, ast.Break, ast.Return))
                   for s in stmts)
    return retries and not gives_up


@register
class UnboundedRetryRule(Rule):
    id = "MEGA010"
    name = "unbounded-retry"
    rationale = ("'while True' + 'except: continue' retries forever; "
                 "bound attempts (see repro.resilience.RetryPolicy)")

    def visit_While(self, node: ast.While, ctx) -> None:
        if not _is_constant_true(node.test):
            return
        for stmt in _own_statements(node.body):
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if _handler_retries_forever(handler):
                    ctx.report(self, handler,
                               "unbounded retry: 'while True' handler "
                               "continues on every failure with no "
                               "raise/break — bound the attempts "
                               "(repro.resilience.call_with_retry)")
