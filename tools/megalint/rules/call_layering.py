"""MEGA013 — call-graph layering: no layer calls upward, however the
callee got into scope.

MEGA001 checks ``import`` statements, which is necessary but not
sufficient: a lower layer can still *call* upward through a package
re-export (``from repro import helper`` where ``repro/__init__``
re-exported a ``repro.train`` function) or through an injected
callable (a parameter whose default value is an upper-layer function).
Both leave no banned import statement behind, and both couple the
scheduling substrate to the layers above it just the same — the
dependency *at runtime* is what layering protects.

This rule walks every resolved edge of the project call graph and
flags calls whose callee's layer is above the caller's, using the same
layer model as MEGA001: low (``repro.core``/``graph``/``tensor``/
``resilience``) < high (``models``/``train``/``pipeline``/
``distributed``) < ordered top layers (``serve`` < ``cluster`` <
``bench``).  The edge's resolution kind (re-export, injected default)
is named in the message, since that is precisely what the import rule
could not see.
"""

from __future__ import annotations

from typing import Optional, Tuple

from tools.megalint.registry import ProjectRule, register


def _layer_rank(module: str, config) -> Optional[Tuple[int, str]]:
    """(rank, layer prefix) of ``module``; None when unlayered."""
    def _under(prefix: str) -> bool:
        return module == prefix or module.startswith(prefix + ".")

    for prefix in config.low_layers:
        if _under(prefix):
            return 0, prefix
    for prefix in config.high_layers:
        if _under(prefix):
            return 1, prefix
    for i, prefix in enumerate(config.top_layers):
        if _under(prefix):
            return 2 + i, prefix
    return None


_VIA = {
    "direct": "a direct call",
    "re-export": "a package re-export (invisible to import checks)",
    "self": "a method call",
    "injected-default": "an injected default callable (invisible to "
                        "import checks)",
    "init": "instantiation",
}


@register
class CallLayeringRule(ProjectRule):
    id = "MEGA013"
    name = "call-layering"
    rationale = ("the call graph must respect the layer order even "
                 "when the callee arrives via a re-export or an "
                 "injected default callable — strengthens MEGA001 "
                 "from import statements to actual calls")

    def check_project(self, index, reporter) -> None:
        graph = index.callgraph()
        config = index.config
        for caller in sorted(graph.edges):
            caller_node = graph.nodes.get(caller)
            if caller_node is None:
                continue
            caller_rank = _layer_rank(caller_node.module, config)
            if caller_rank is None:
                continue
            for edge in graph.edges[caller]:
                callee_node = graph.nodes.get(edge.callee)
                if callee_node is None:
                    continue
                callee_rank = _layer_rank(callee_node.module, config)
                if callee_rank is None or callee_rank[0] <= caller_rank[0]:
                    continue
                info = index.modules[caller_node.module]
                reporter.report(
                    self, info, edge.line,
                    f"'{caller}' (layer '{caller_rank[1]}') calls "
                    f"upward into '{edge.callee}' (layer "
                    f"'{callee_rank[1]}') via {_VIA.get(edge.via, edge.via)}"
                    " — invert the dependency or move the callee down")
