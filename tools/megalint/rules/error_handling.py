"""MEGA005 — no bare or blind ``except`` that swallows errors.

The cache and checkpoint subsystems promise "corruption is a miss,
never a crash" — which only holds when every handler *does* something:
invalidate the entry, count the miss, fall back.  A bare ``except:``
(which also eats ``KeyboardInterrupt``/``SystemExit``) or an
``except Exception: pass`` hides the corruption instead, and the cache
serves garbage forever after.

Flagged everywhere under ``src/``:

* bare ``except:`` handlers, always;
* ``except Exception`` / ``except BaseException`` handlers whose body
  is only ``pass`` / ``continue`` / ``...`` — a broad catch is fine
  *if* it handles (narrow catches like ``except OSError: pass`` around
  a best-effort unlink are allowed).
"""

from __future__ import annotations

import ast

from tools.megalint.astutil import body_only_swallows, dotted_name
from tools.megalint.registry import Rule, register

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(node: ast.expr) -> bool:
    if isinstance(node, ast.Tuple):
        return any(_is_broad(e) for e in node.elts)
    flat = dotted_name(node)
    return flat is not None and flat.split(".")[-1] in _BROAD


@register
class ErrorSwallowRule(Rule):
    id = "MEGA005"
    name = "error-swallow"
    rationale = ("bare except / broad except-with-empty-body hides "
                 "corruption in cache and checkpoint paths")

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx) -> None:
        if node.type is None:
            ctx.report(self, node,
                       "bare 'except:' catches SystemExit and "
                       "KeyboardInterrupt too — name the exceptions "
                       "(at most 'except Exception') and handle them")
            return
        if _is_broad(node.type) and body_only_swallows(node.body):
            ctx.report(self, node,
                       "broad except with an empty body silently "
                       "swallows every error — handle it (invalidate, "
                       "count, fall back) or narrow the exception type")
