"""MEGA007 — every public module carries a real module docstring.

Absorbed from ``tools/check_docstrings.py`` (the repo's original
single-purpose gate).  "Public" means no component of the dotted module
path starts with an underscore; ``__init__.py`` counts as the package's
own docstring.  A docstring shorter than the configured minimum is a
placeholder, not documentation.

:func:`missing_module_docstrings` is the engine-independent helper the
back-compat shim (and tests) reuse directly.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Sequence

from tools.megalint.registry import Rule, register

#: Default minimum docstring length (mirrors the old tool's constant).
MIN_LENGTH = 10


def is_public_module_parts(parts: Sequence[str]) -> bool:
    """True when no dotted-path component is underscore-private."""
    return all(not p.startswith("_") for p in parts)


def missing_module_docstrings(root: Path,
                              min_length: int = MIN_LENGTH) -> List[str]:
    """Repo-relative paths of public modules lacking a real docstring.

    Standalone (no engine) so the ``check_docstrings`` shim keeps its
    historical signature and output format.
    """
    root = Path(root)
    missing = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = list(rel.parts[:-1])
        if rel.stem != "__init__":
            parts.append(rel.stem)
        if not is_public_module_parts(parts):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # a broken file is also a gate failure
            raise SystemExit(f"{path}: syntax error during docs gate: {exc}")
        doc = ast.get_docstring(tree) or ""
        if len(doc.strip()) < min_length:
            missing.append(str(path.relative_to(root.parent)))
    return missing


@register
class ModuleDocstringRule(Rule):
    id = "MEGA007"
    name = "module-docstring"
    rationale = ("public modules must document their purpose; a short "
                 "placeholder does not count")

    def enabled_for(self, ctx) -> bool:
        return is_public_module_parts(ctx.module.split("."))

    def end_module(self, ctx) -> None:
        doc = (ast.get_docstring(ctx.tree) or "").strip()
        minimum = ctx.config.docstring_min_length
        if len(doc) < minimum:
            what = "missing" if not doc else f"placeholder ({len(doc)} chars)"
            ctx.report(self, 1,
                       f"public module '{ctx.module}' has a {what} module "
                       f"docstring (need >= {minimum} chars)")
