"""The megalint rule set.

Importing this package registers every rule with
:mod:`tools.megalint.registry`.  One module per concern keeps each rule
reviewable next to its rationale; see ``docs/static_analysis.md`` for
the user-facing catalogue.
"""

from tools.megalint.rules import (  # noqa: F401
    layering,
    determinism,
    hot_loops,
    cache_purity,
    error_handling,
    mutable_defaults,
    docstrings,
    public_api,
    io_hygiene,
    retry_bounds,
    ledger_determinism,
    taint_replay,
    call_layering,
    dead_exports,
    duck_types,
)
