"""MEGA009 — library code does not ``print``.

Everything under ``src/repro`` except the CLI is a library: it is
driven by trainers, worker pools, benchmarks, and tests that own
stdout.  A stray ``print`` inside a kernel or the pipeline interleaves
with worker output, corrupts ``--format json`` consumers, and is
invisible in production logs.  Return values, raise, or route through
the CLI layer; modules whose *job* is user-facing output are listed in
``print-allowed``.
"""

from __future__ import annotations

import ast

from tools.megalint.registry import Rule, register


@register
class NoPrintRule(Rule):
    id = "MEGA009"
    name = "no-print"
    rationale = ("library modules must not print; stdout belongs to the "
                 "CLI layer")

    def enabled_for(self, ctx) -> bool:
        return not ctx.in_modules(ctx.config.print_allowed)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(self, node,
                       "print() in library code — return the data, "
                       "raise, or move the output to repro.cli")
