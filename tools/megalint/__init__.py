"""megalint: an AST-based invariant linter for the MEGA reproduction.

Generic linters cannot know that Algorithm 1 schedules must be
bit-deterministic (PR 1's cache keys depend on it), that
``repro.tensor.functional`` must stay vectorised, or that ``repro.core``
must never import ``repro.train``.  megalint turns those repo-specific
contracts — previously living in docstrings — into machine-checked
rules with stable IDs (``MEGA0xx``), inline suppressions, a pyproject
config block, and a baseline mode for incremental adoption.

Run it::

    python -m tools.megalint            # lint the configured src root
    python -m tools.megalint --list-rules
    python -m tools.megalint src --format json

The tier-1 suite wires it in via ``tests/test_megalint_gate.py``, so
``src/`` staying violation-free is a standing gate for every PR.  The
rule catalogue lives in ``docs/static_analysis.md``.
"""

from tools.megalint.baseline import (
    apply_baseline,
    load_baseline,
    violation_key,
    write_baseline,
)
from tools.megalint.config import ConfigError, LintConfig, load_config
from tools.megalint.engine import (
    Engine,
    LintResult,
    ModuleContext,
    ParseCache,
    ParsedFile,
    Violation,
    lint_paths,
    module_name_for,
)
from tools.megalint.project import ProjectIndex
from tools.megalint.registry import (
    ProjectRule,
    Rule,
    all_rules,
    register,
    rule_ids,
)

__all__ = [
    "Engine",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "ParseCache",
    "ParsedFile",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Violation",
    "ConfigError",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "load_config",
    "module_name_for",
    "register",
    "rule_ids",
    "violation_key",
    "write_baseline",
]
