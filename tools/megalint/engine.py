"""The megalint engine: one parse and one AST walk per file, rule
dispatch, suppression, and the optional whole-program project pass.

The engine never imports the code it checks — everything is ``ast`` on
source text, so it is safe to run against broken or import-cycling
code (and it can therefore *enforce* the import rules).

Per file the engine:

1. loads the source through a shared :class:`ParseCache` (a parse
   failure is reported as ``MEGA000``; each file is parsed exactly
   once per run, even when the project pass needs the same tree),
2. builds a child->parent map during a single ``ast.walk``,
3. dispatches each node to every enabled per-file rule with a matching
   ``visit_<NodeType>`` method,
4. filters the collected violations through inline suppression
   comments (``# megalint: disable=MEGA003`` on the offending line).

When project targets are given, the engine then builds a
:class:`~tools.megalint.project.ProjectIndex` over them (reusing the
cached parses) and runs every registered
:class:`~tools.megalint.registry.ProjectRule` once against the whole
program.  Baseline subtraction happens after both passes (see
:mod:`tools.megalint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.megalint.config import LintConfig
from tools.megalint.registry import (
    PARSE_ERROR_ID,
    ProjectRule,
    Rule,
    all_rules,
)

#: Inline suppression marker.  ``# megalint: disable=MEGA001,MEGA002``
#: silences those rules on that line; ``disable=all`` silences every
#: rule on the line.
_SUPPRESS_RE = re.compile(
    r"#\s*megalint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:#|$)")


@dataclass(frozen=True)
class Violation:
    """One finding: rule, location, and human-readable message."""

    rule_id: str
    path: str          # posix path as given on the command line
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    project_files: int = 0
    suppressed: int = 0
    baselined: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _line_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule IDs suppressed there."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            ids = {p.strip() for p in match.group(1).split(",") if p.strip()}
            out[i] = ids
    return out


@dataclass
class ParsedFile:
    """One file's source, AST, and suppression map — parsed once."""

    path: Path
    display_path: str
    source: str = ""
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    #: (line, col, message) when the file failed to read or parse.
    error: Optional[Tuple[int, int, str]] = None
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)


class ParseCache:
    """Read + ``ast.parse`` each file at most once per run.

    Both the per-file walk and the project pass pull from the same
    cache, which is what fixes the historical double-parse;
    ``tests/megalint/test_project.py`` asserts the parse count.
    """

    def __init__(self) -> None:
        self._cache: Dict[Path, ParsedFile] = {}
        self.parse_count = 0

    def load(self, path: Path) -> ParsedFile:
        path = Path(path)
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        try:
            display = path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            display = path.as_posix()
        parsed = ParsedFile(path=path, display_path=display)
        try:
            parsed.source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            parsed.error = (1, 0, f"unreadable file: {exc}")
            self._cache[path] = parsed
            return parsed
        parsed.lines = parsed.source.splitlines()
        parsed.suppressions = _line_suppressions(parsed.lines)
        try:
            self.parse_count += 1
            parsed.tree = ast.parse(parsed.source, filename=str(path))
        except SyntaxError as exc:
            parsed.error = (exc.lineno or 1, (exc.offset or 1) - 1,
                            f"syntax error: {exc.msg}")
        self._cache[path] = parsed
        return parsed


class ModuleContext:
    """Per-file state handed to rules during the walk."""

    def __init__(self, parsed: ParsedFile, module: str,
                 config: LintConfig):
        self.path = parsed.path
        self.display_path = parsed.display_path
        self.module = module          # dotted name, e.g. "repro.core.schedule"
        self.is_package = parsed.path.name == "__init__.py"
        self.source = parsed.source
        self.lines = parsed.lines
        self.tree = parsed.tree
        self.config = config
        self.violations: List[Violation] = []
        self.suppressed = 0
        self._suppress = parsed.suppressions
        self._parents: Dict[int, ast.AST] = {}

    # -- structure helpers -------------------------------------------------
    @property
    def package(self) -> str:
        """The package this module lives in (itself for ``__init__``)."""
        if self.is_package:
            return self.module
        return self.module.rpartition(".")[0]

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        seen = 0
        current = self.parent(node)
        while current is not None and seen < 10_000:
            yield current
            current = self.parent(current)
            seen += 1

    def in_modules(self, prefixes: Sequence[str]) -> bool:
        """True when this module equals or lives under any prefix."""
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    # -- reporting ---------------------------------------------------------
    def report(self, rule: Rule, node, message: str) -> None:
        """Record one violation unless an inline comment suppresses it."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        ids = self._suppress.get(line, ())
        if rule.id in ids or "all" in ids:
            self.suppressed += 1
            return
        self.violations.append(Violation(
            rule_id=rule.id, path=self.display_path,
            line=line, col=col, message=message))


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the scan root.

    The scan root itself is treated as a sys.path entry: ``src/repro/x.py``
    scanned from root ``src`` is module ``repro.x``.
    """
    rel = path.relative_to(root)
    parts = list(rel.parts[:-1])
    stem = rel.stem
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


def iter_python_files(target: Path) -> List[Path]:
    """All ``.py`` files under ``target`` in sorted (deterministic) order."""
    if target.is_file():
        return [target]
    return sorted(p for p in target.rglob("*.py") if p.is_file())


def scan_root_for(target: Path) -> Path:
    """The sys.path-style root that gives ``target`` its module names.

    A directory target that is itself a package (``tools/`` carries an
    ``__init__.py``) is scanned from its parent, so ``tools/megalint/
    cli.py`` names module ``tools.megalint.cli`` — the name the rest of
    the repo imports it by — rather than ``megalint.cli``.  Same climb
    for single-file targets nested inside packages.
    """
    root = target if target.is_dir() else target.parent
    while (root / "__init__.py").is_file() and root.parent != root:
        root = root.parent
    return root


def _resolve_selection(config: LintConfig,
                       select: Optional[Iterable[str]],
                       disable: Optional[Iterable[str]]) -> List[Rule]:
    """Instantiate the rule set for this run."""
    chosen = []
    config_disabled = set(config.disable) | set(disable or ())
    selected = set(select) if select else None
    for cls in all_rules():
        if selected is not None and cls.id not in selected:
            continue
        if selected is None and cls.id in config_disabled:
            continue
        chosen.append(cls())
    return chosen


class Engine:
    """Walks files once and dispatches nodes to visitor-based rules;
    optionally follows up with the whole-program project pass."""

    def __init__(self, config: Optional[LintConfig] = None,
                 select: Optional[Iterable[str]] = None,
                 disable: Optional[Iterable[str]] = None,
                 parse_cache: Optional[ParseCache] = None):
        self.config = config or LintConfig()
        self.parse_cache = parse_cache or ParseCache()
        rules = _resolve_selection(self.config, select, disable)
        self.rules = [r for r in rules if not isinstance(r, ProjectRule)]
        self.project_rules = [r for r in rules
                              if isinstance(r, ProjectRule)]
        # Dispatch table: node type name -> [(rule, bound method)].
        self._handlers: Dict[str, List[Tuple[Rule, object]]] = {}
        for rule in self.rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_type = attr[len("visit_"):]
                    self._handlers.setdefault(node_type, []).append(
                        (rule, getattr(rule, attr)))

    # ------------------------------------------------------------------
    def run(self, targets: Sequence[Path],
            project_targets: Optional[Sequence[Path]] = None,
            explicit_files: Optional[Sequence[Tuple[Path, Path]]] = None
            ) -> LintResult:
        """Lint every python file under each target path.

        ``targets`` scope the per-file rules; ``explicit_files``
        (``(path, scan_root)`` pairs) replaces the directory walk —
        ``--changed-only`` uses it so edited files keep their real
        dotted module names (and therefore their rule scoping).
        ``project_targets``, when given, are indexed in full and
        handed to the project rules — cross-module facts are only
        sound over the whole tree.
        """
        result = LintResult(
            rule_ids=[r.id for r in self.rules + self.project_rules])
        if explicit_files is not None:
            for path, root in explicit_files:
                self._lint_file(Path(path), Path(root), result)
        else:
            for target in targets:
                target = Path(target)
                root = scan_root_for(target)
                for path in iter_python_files(target):
                    self._lint_file(path, root, result)
        if project_targets is not None and self.project_rules:
            self._run_project_pass(project_targets, result)
        result.violations.sort(key=Violation.sort_key)
        return result

    # ------------------------------------------------------------------
    def _lint_file(self, path: Path, root: Path,
                   result: LintResult) -> None:
        result.files_scanned += 1
        parsed = self.parse_cache.load(path)
        if parsed.error is not None:
            line, col, message = parsed.error
            result.violations.append(Violation(
                PARSE_ERROR_ID, parsed.display_path, line, col, message))
            return

        module = module_name_for(path, root)
        ctx = ModuleContext(parsed, module, self.config)

        active = [r for r in self.rules if r.enabled_for(ctx)]
        active_ids = {id(r) for r in active}
        for rule in active:
            rule.begin_module(ctx)
        # The single walk: build the parent map and dispatch in one pass.
        for node in ast.walk(parsed.tree):
            for child in ast.iter_child_nodes(node):
                ctx._parents[id(child)] = node
            for rule, method in self._handlers.get(type(node).__name__, ()):
                if id(rule) in active_ids:
                    method(node, ctx)
        for rule in active:
            rule.end_module(ctx)

        result.violations.extend(ctx.violations)
        result.suppressed += ctx.suppressed

    # ------------------------------------------------------------------
    def _run_project_pass(self, project_targets: Sequence[Path],
                          result: LintResult) -> None:
        from tools.megalint.project import ProjectIndex, ProjectReporter
        index = ProjectIndex.build(
            [Path(t) for t in project_targets], self.config,
            cache=self.parse_cache)
        result.project_files = len(index.modules)
        reporter = ProjectReporter(index)
        for rule in self.project_rules:
            rule.check_project(index, reporter)
        result.violations.extend(reporter.violations)
        result.suppressed += reporter.suppressed


def lint_paths(targets: Sequence[Path],
               config: Optional[LintConfig] = None,
               select: Optional[Iterable[str]] = None,
               disable: Optional[Iterable[str]] = None,
               project_targets: Optional[Sequence[Path]] = None
               ) -> LintResult:
    """Convenience wrapper: build an engine and run it over ``targets``."""
    import tools.megalint.rules  # noqa: F401  (registers the rule set)
    return Engine(config=config, select=select, disable=disable).run(
        [Path(t) for t in targets],
        project_targets=(None if project_targets is None
                         else [Path(t) for t in project_targets]))
