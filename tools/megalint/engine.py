"""The megalint engine: one AST walk per file, rule dispatch, suppression.

The engine never imports the code it checks — everything is ``ast`` on
source text, so it is safe to run against broken or import-cycling
code (and it can therefore *enforce* the import rules).

Per file the engine:

1. parses the source (a parse failure is reported as ``MEGA000``),
2. builds a child->parent map during a single ``ast.walk``,
3. dispatches each node to every enabled rule with a matching
   ``visit_<NodeType>`` method,
4. filters the collected violations through inline suppression
   comments (``# megalint: disable=MEGA003`` on the offending line).

Baseline subtraction happens after all files are scanned (see
:mod:`tools.megalint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.megalint.config import LintConfig
from tools.megalint.registry import PARSE_ERROR_ID, Rule, all_rules

#: Inline suppression marker.  ``# megalint: disable=MEGA001,MEGA002``
#: silences those rules on that line; ``disable=all`` silences every
#: rule on the line.
_SUPPRESS_RE = re.compile(
    r"#\s*megalint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:#|$)")


@dataclass(frozen=True)
class Violation:
    """One finding: rule, location, and human-readable message."""

    rule_id: str
    path: str          # posix path as given on the command line
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _line_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule IDs suppressed there."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            ids = {p.strip() for p in match.group(1).split(",") if p.strip()}
            out[i] = ids
    return out


class ModuleContext:
    """Per-file state handed to rules during the walk."""

    def __init__(self, path: Path, display_path: str, module: str,
                 source: str, tree: ast.Module, config: LintConfig):
        self.path = path
        self.display_path = display_path
        self.module = module          # dotted name, e.g. "repro.core.schedule"
        self.is_package = path.name == "__init__.py"
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.violations: List[Violation] = []
        self.suppressed = 0
        self._suppress = _line_suppressions(self.lines)
        self._parents: Dict[int, ast.AST] = {}

    # -- structure helpers -------------------------------------------------
    @property
    def package(self) -> str:
        """The package this module lives in (itself for ``__init__``)."""
        if self.is_package:
            return self.module
        return self.module.rpartition(".")[0]

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        seen = 0
        current = self.parent(node)
        while current is not None and seen < 10_000:
            yield current
            current = self.parent(current)
            seen += 1

    def in_modules(self, prefixes: Sequence[str]) -> bool:
        """True when this module equals or lives under any prefix."""
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    # -- reporting ---------------------------------------------------------
    def report(self, rule: Rule, node, message: str) -> None:
        """Record one violation unless an inline comment suppresses it."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        ids = self._suppress.get(line, ())
        if rule.id in ids or "all" in ids:
            self.suppressed += 1
            return
        self.violations.append(Violation(
            rule_id=rule.id, path=self.display_path,
            line=line, col=col, message=message))


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the scan root.

    The scan root itself is treated as a sys.path entry: ``src/repro/x.py``
    scanned from root ``src`` is module ``repro.x``.
    """
    rel = path.relative_to(root)
    parts = list(rel.parts[:-1])
    stem = rel.stem
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


def iter_python_files(target: Path) -> List[Path]:
    """All ``.py`` files under ``target`` in sorted (deterministic) order."""
    if target.is_file():
        return [target]
    return sorted(p for p in target.rglob("*.py") if p.is_file())


def _resolve_selection(config: LintConfig,
                       select: Optional[Iterable[str]],
                       disable: Optional[Iterable[str]]) -> List[Rule]:
    """Instantiate the rule set for this run."""
    chosen = []
    config_disabled = set(config.disable) | set(disable or ())
    selected = set(select) if select else None
    for cls in all_rules():
        if selected is not None and cls.id not in selected:
            continue
        if selected is None and cls.id in config_disabled:
            continue
        chosen.append(cls())
    return chosen


class Engine:
    """Walks files once and dispatches nodes to visitor-based rules."""

    def __init__(self, config: Optional[LintConfig] = None,
                 select: Optional[Iterable[str]] = None,
                 disable: Optional[Iterable[str]] = None):
        self.config = config or LintConfig()
        self.rules = _resolve_selection(self.config, select, disable)
        # Dispatch table: node type name -> [(rule, bound method)].
        self._handlers: Dict[str, List[Tuple[Rule, object]]] = {}
        for rule in self.rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_type = attr[len("visit_"):]
                    self._handlers.setdefault(node_type, []).append(
                        (rule, getattr(rule, attr)))

    # ------------------------------------------------------------------
    def run(self, targets: Sequence[Path]) -> LintResult:
        """Lint every python file under each target path."""
        result = LintResult(rule_ids=[r.id for r in self.rules])
        for target in targets:
            target = Path(target)
            root = target if target.is_dir() else target.parent
            for path in iter_python_files(target):
                self._lint_file(path, root, target, result)
        result.violations.sort(key=Violation.sort_key)
        return result

    # ------------------------------------------------------------------
    def _display_path(self, path: Path, target: Path) -> str:
        try:
            return path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()

    def _lint_file(self, path: Path, root: Path, target: Path,
                   result: LintResult) -> None:
        result.files_scanned += 1
        display = self._display_path(path, target)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.violations.append(Violation(
                PARSE_ERROR_ID, display, 1, 0, f"unreadable file: {exc}"))
            return
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.violations.append(Violation(
                PARSE_ERROR_ID, display, exc.lineno or 1,
                (exc.offset or 1) - 1, f"syntax error: {exc.msg}"))
            return

        module = module_name_for(path, root)
        ctx = ModuleContext(path, display, module, source, tree, self.config)

        active = [r for r in self.rules if r.enabled_for(ctx)]
        active_ids = {id(r) for r in active}
        for rule in active:
            rule.begin_module(ctx)
        # The single walk: build the parent map and dispatch in one pass.
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx._parents[id(child)] = node
            for rule, method in self._handlers.get(type(node).__name__, ()):
                if id(rule) in active_ids:
                    method(node, ctx)
        for rule in active:
            rule.end_module(ctx)

        result.violations.extend(ctx.violations)
        result.suppressed += ctx.suppressed


def lint_paths(targets: Sequence[Path],
               config: Optional[LintConfig] = None,
               select: Optional[Iterable[str]] = None,
               disable: Optional[Iterable[str]] = None) -> LintResult:
    """Convenience wrapper: build an engine and run it over ``targets``."""
    import tools.megalint.rules  # noqa: F401  (registers the rule set)
    return Engine(config=config, select=select, disable=disable).run(
        [Path(t) for t in targets])
