"""Entry point for ``python -m tools.megalint``."""

import sys

from tools.megalint.cli import main

if __name__ == "__main__":
    sys.exit(main())
