"""Rule base class and the global rule registry.

Every rule has a stable ID (``MEGA0xx``) that suppression comments,
baseline files, and ``--select``/``--disable`` refer to.  IDs are never
reused: retiring a rule retires its number.

A rule participates in the engine's single AST walk by defining
``visit_<NodeType>`` methods (e.g. ``visit_Call``); the engine builds a
dispatch table once and feeds every node of a matching type to every
enabled rule.  Rules that need a whole-module view implement
``begin_module`` / ``end_module`` instead (or additionally).
"""

from __future__ import annotations

from typing import Dict, List, Type

#: Reserved ID used by the engine itself for unparsable files.  It is
#: not a registered rule — it can't be disabled, because a file that
#: does not parse can't be checked at all.
PARSE_ERROR_ID = "MEGA000"


class Rule:
    """Base class for megalint rules.

    Class attributes
    ----------------
    id:
        Stable ``MEGA0xx`` identifier.
    name:
        Short kebab-case name used in reports.
    rationale:
        One-line justification shown by ``--list-rules`` and in docs.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def enabled_for(self, ctx) -> bool:
        """Whether this rule applies to the module in ``ctx`` at all.

        Scoped rules (hot-loop, cache-purity, ...) override this to
        consult the config's module lists; the engine skips dispatch for
        modules where this returns False.
        """
        return True

    def begin_module(self, ctx) -> None:
        """Hook called before the walk of one module."""

    def end_module(self, ctx) -> None:
        """Hook called after the walk of one module."""


class ProjectRule(Rule):
    """Base class for whole-program rules (the project pass).

    A project rule does not take part in the per-file walk; instead the
    engine calls :meth:`check_project` once per run with the
    :class:`~tools.megalint.project.ProjectIndex` built over the
    project targets and a reporter that routes findings through the
    same inline-suppression and baseline machinery as per-file rules.
    """

    project = True

    def check_project(self, index, reporter) -> None:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.id.startswith("MEGA"):
        raise ValueError(f"rule {cls.__name__} has no valid id: {cls.id!r}")
    if cls.id == PARSE_ERROR_ID:
        raise ValueError(f"{PARSE_ERROR_ID} is reserved for parse errors")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id} "
                         f"({_REGISTRY[cls.id].__name__} vs {cls.__name__})")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by ID."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)
