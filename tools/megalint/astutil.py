"""Small AST predicates shared by several rules."""

from __future__ import annotations

import ast
from typing import Optional, Sequence


def call_name(node: ast.Call) -> Optional[str]:
    """The simple callee name of a call: ``foo(...)`` or ``obj.foo(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains into ``"a.b.c"`` (None if not)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_setish(node: ast.AST) -> bool:
    """Syntactically a set: display, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def is_name_call(node: ast.AST, names: Sequence[str]) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in names)


def body_only_swallows(body: Sequence[ast.stmt]) -> bool:
    """True when a block does nothing: pass / continue / ``...`` only."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


def decorator_is(node: ast.expr, name: str) -> bool:
    """Matches ``@name``, ``@mod.name``, ``@name(...)`` decorators."""
    if isinstance(node, ast.Call):
        node = node.func
    flat = dotted_name(node)
    return flat is not None and flat.split(".")[-1] == name


MUTABLE_FACTORIES = ("list", "dict", "set", "defaultdict",
                     "OrderedDict", "Counter", "deque", "bytearray")


def is_mutable_literal(node: ast.AST) -> bool:
    """Syntactically a fresh mutable container used as a default."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in MUTABLE_FACTORIES
    return False
