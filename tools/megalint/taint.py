"""Interprocedural determinism taint: sources, sanctioned impurities,
and call-chain reachability.

The repo's replay contract (byte-identical ``as_dict`` /
``replay_surface`` output, pure ``pipeline.hashing`` keys,
seed-deterministic ``FaultPlan.roll``) is only as strong as the
*transitive* call closure of those functions — a wall-clock read two
calls away poisons the surface just as surely as one inside it, and the
per-file rules (MEGA004/MEGA011) cannot see it.  This module computes:

* **direct sources** per function: wall-clock reads, ``random`` /
  ``os.urandom`` / ``secrets`` / ``uuid`` / legacy ``np.random`` RNG,
  environment reads, unsorted filesystem enumeration, and
  set-order-dependent iteration;
* **sanctioned impurities**: a source is exempt only when its line
  carries an explicit declaration::

      t = time.time()  # megalint: sanctioned-impurity=clock: wall block only

  The declaration names the impurity kind(s) (``clock``, ``rng``,
  ``env``, ``fs-order``, ``set-order``) and *must* give a
  justification after the colon — a declaration without one is itself
  reported, so impurities are declared, never silently suppressed;
* **taint chains**: shortest call-graph path from a sink function to a
  function containing an unsanctioned source (breadth-first over the
  deterministic edge order, so reports are stable).

MEGA012 turns the chains into violations; the machinery lives here so
tests (and future rules) can drive it directly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from tools.megalint.astutil import dotted_name, is_setish
from tools.megalint.callgraph import CallGraph, _walk_own_body
from tools.megalint.project import ModuleInfo, ProjectIndex
from tools.megalint.rules.cache_purity import _CLOCK_CALLS

#: ``# megalint: sanctioned-impurity=clock,env: justification``
_SANCTION_RE = re.compile(
    r"#\s*megalint:\s*sanctioned-impurity=([a-z,\-\s]+?)\s*:\s*(.*)$")

#: Impurity kinds a declaration may name.
IMPURITY_KINDS = frozenset({"clock", "rng", "env", "fs-order", "set-order"})

#: ``random`` module callables that draw from global RNG state.
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "triangular", "getrandbits", "randbytes", "seed",
})

#: Legacy global-state numpy RNG (mirrors MEGA002's ban list).
_NP_RANDOM_FUNCS = frozenset({
    "seed", "rand", "randn", "random", "random_sample", "ranf", "sample",
    "randint", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "uniform", "normal", "standard_normal", "binomial", "poisson",
    "beta", "gamma", "exponential", "geometric", "multinomial",
    "get_state", "set_state",
})

_ENV_CALLS = frozenset({"os.getenv", "os.environb"})
_FS_CALLS = frozenset({"os.listdir", "os.scandir"})
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})


@dataclass(frozen=True)
class Source:
    """One direct impurity found inside a function body."""

    kind: str       # one of IMPURITY_KINDS
    line: int
    what: str       # human-readable, e.g. "time.time()"


@dataclass(frozen=True)
class TaintChain:
    """A sink-to-source call path proving the sink is tainted."""

    sink: str                     # sink function qualname
    source: Source
    source_function: str          # qualname containing the source
    source_path: str              # display path of the defining file
    hops: Tuple[str, ...]         # qualnames, sink first

    def describe(self) -> str:
        route = " -> ".join(self.hops)
        return (f"{self.source.kind} source '{self.source.what}' "
                f"({self.source_path}:{self.source.line}) reaches it "
                f"via {route}")


@dataclass(frozen=True)
class BadDeclaration:
    """A sanctioned-impurity comment that does not pass muster."""

    module: str
    line: int
    problem: str


def _sanctions_for(info: ModuleInfo) -> Dict[int, Tuple[frozenset, str]]:
    """Line -> (kinds, justification) for declaration comments."""
    out: Dict[int, Tuple[frozenset, str]] = {}
    for i, line in enumerate(info.parsed.lines, start=1):
        match = _SANCTION_RE.search(line)
        if match:
            kinds = frozenset(p.strip() for p in match.group(1).split(",")
                              if p.strip())
            out[i] = (kinds, match.group(2).strip())
    return out


def _iter_sources(fn_node: ast.AST) -> Iterator[Source]:
    """Direct impurity sources syntactically inside one function body."""
    for node in _walk_own_body(fn_node):
        if isinstance(node, ast.Call):
            yield from _call_sources(node)
        elif isinstance(node, ast.Attribute):
            if dotted_name(node) == "os.environ":
                yield Source("env", node.lineno, "os.environ")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if is_setish(node.iter):
                yield Source("set-order", node.iter.lineno,
                             "iteration over an unordered set")
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            if is_setish(node.generators[0].iter):
                yield Source("set-order", node.generators[0].iter.lineno,
                             "comprehension over an unordered set")


def _call_sources(node: ast.Call) -> Iterator[Source]:
    flat = dotted_name(node.func)
    if flat is None:
        return
    parts = flat.split(".")
    if flat in _CLOCK_CALLS:
        yield Source("clock", node.lineno, f"{flat}()")
    elif flat == "os.urandom":
        yield Source("rng", node.lineno, "os.urandom()")
    elif parts[0] in ("random",) and len(parts) == 2 \
            and parts[1] in _RANDOM_FUNCS:
        yield Source("rng", node.lineno, f"{flat}()")
    elif parts[0] in ("secrets", "uuid") and len(parts) == 2:
        yield Source("rng", node.lineno, f"{flat}()")
    elif (len(parts) == 3 and parts[0] in ("np", "numpy")
            and parts[1] == "random" and parts[2] in _NP_RANDOM_FUNCS):
        yield Source("rng", node.lineno, f"{flat}()")
    elif flat in _ENV_CALLS or flat == "os.environ.get":
        yield Source("env", node.lineno, f"{flat}()")
    elif flat in _FS_CALLS:
        yield Source("fs-order", node.lineno, f"{flat}()")
    elif (isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS):
        yield Source("fs-order", node.lineno, f"{flat}()")


class TaintAnalysis:
    """Direct sources per function plus sink-to-source reachability."""

    def __init__(self, index: ProjectIndex, graph: CallGraph):
        self.index = index
        self.graph = graph
        #: function qualname -> unsanctioned direct sources, in line order.
        self.direct: Dict[str, List[Source]] = {}
        #: declarations that are malformed (no justification, unknown
        #: kind) — surfaced as violations, never silently dropped.
        self.bad_declarations: List[BadDeclaration] = []
        #: (module, line) of declarations that sanctioned at least one
        #: source — lets callers count sanctioned impurities.
        self.sanctioned: List[Tuple[str, int, Source]] = []
        self._analyse()

    # ------------------------------------------------------------------
    def _analyse(self) -> None:
        sanctions_by_module: Dict[str, Dict[int, Tuple[frozenset, str]]] = {}
        for mod_name in sorted(self.index.modules):
            info = self.index.modules[mod_name]
            sanctions = _sanctions_for(info)
            sanctions_by_module[mod_name] = sanctions
            for line, (kinds, why) in sorted(sanctions.items()):
                unknown = kinds - IMPURITY_KINDS
                if unknown:
                    self.bad_declarations.append(BadDeclaration(
                        mod_name, line,
                        f"unknown impurity kind(s) "
                        f"{', '.join(sorted(unknown))} (known: "
                        f"{', '.join(sorted(IMPURITY_KINDS))})"))
                if not why:
                    self.bad_declarations.append(BadDeclaration(
                        mod_name, line,
                        "sanctioned-impurity declaration without a "
                        "justification — say why this impurity is safe"))
        for qualname in sorted(self.graph.nodes):
            fn = self.graph.nodes[qualname]
            if fn.kind == "class":
                continue
            sanctions = sanctions_by_module.get(fn.module, {})
            kept: List[Source] = []
            for source in sorted(_iter_sources(fn.node),
                                 key=lambda s: (s.line, s.kind, s.what)):
                sanction = sanctions.get(source.line)
                if sanction and source.kind in sanction[0] and sanction[1]:
                    self.sanctioned.append((fn.module, source.line, source))
                    continue
                kept.append(source)
            if kept:
                self.direct[qualname] = kept

    # ------------------------------------------------------------------
    def trace(self, sink: str) -> Optional[TaintChain]:
        """Shortest chain from ``sink`` to an unsanctioned source."""
        seen = {sink}
        queue: List[Tuple[str, Tuple[str, ...]]] = [(sink, (sink,))]
        while queue:
            current, hops = queue.pop(0)
            sources = self.direct.get(current)
            if sources:
                fn = self.graph.nodes[current]
                info = self.index.modules.get(fn.module)
                path = info.parsed.display_path if info else fn.module
                return TaintChain(sink=sink, source=sources[0],
                                  source_function=current,
                                  source_path=path, hops=hops)
            for edge in self.graph.out_edges(current):
                if edge.callee in seen:
                    continue
                seen.add(edge.callee)
                queue.append((edge.callee, hops + (edge.callee,)))
        return None


def sink_functions(index: ProjectIndex, graph: CallGraph,
                   config) -> List[Tuple[str, str]]:
    """(qualname, sink kind) of every taint sink, deterministic order.

    Sinks are: replay-surface builders (``as_dict`` /
    ``replay_surface`` / ``*_replay_surface``) in the
    determinism/ledger module scopes, every function and method of the
    purity modules (``pipeline.hashing`` inputs), and the explicitly
    configured ``taint-sink-functions`` (e.g. ``FaultPlan.roll``).
    """
    surface_scope = list(config.determinism_modules) + list(
        config.ledger_modules)
    purity_scope = list(config.purity_modules)
    explicit = set(config.taint_sink_functions)
    sinks: List[Tuple[str, str]] = []
    for qualname in sorted(graph.nodes):
        fn = graph.nodes[qualname]
        if fn.kind == "class":
            continue
        if qualname in explicit:
            sinks.append((qualname, "configured sink"))
            continue
        name = qualname.rsplit(".", 1)[1]
        in_scope = any(fn.module == p or fn.module.startswith(p + ".")
                       for p in surface_scope)
        if in_scope and (name in ("as_dict", "replay_surface")
                         or name.endswith("_replay_surface")):
            sinks.append((qualname, "replay surface"))
            continue
        in_purity = any(fn.module == p or fn.module.startswith(p + ".")
                        for p in purity_scope)
        if in_purity and not name.startswith("__"):
            sinks.append((qualname, "cache-key path"))
    return sinks
