"""Lint configuration: defaults plus the ``[tool.megalint]`` pyproject block.

All scoping decisions (which modules count as kernels, which as cache
code, which layers may not import which) live here so the rules
themselves stay mechanical.  TOML keys use kebab-case and map 1:1 onto
:class:`LintConfig` fields (``kernel-modules`` -> ``kernel_modules``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - py3.9/3.10 fallback
    tomllib = None


@dataclass
class LintConfig:
    """Everything configurable about a megalint run."""

    #: Directory scanned when the CLI is given no path arguments.
    src_root: str = "src"

    #: MEGA001: module prefixes forming the low layers...
    low_layers: List[str] = field(default_factory=lambda: [
        "repro.core", "repro.graph", "repro.tensor", "repro.resilience"])
    #: ...which must never import these high layers.
    high_layers: List[str] = field(default_factory=lambda: [
        "repro.models", "repro.train", "repro.pipeline",
        "repro.distributed"])
    #: ...and the top layers above both, *ordered*: each may import
    #: anything below plus earlier top layers, while nothing below (or
    #: earlier) imports it.
    top_layers: List[str] = field(default_factory=lambda: [
        "repro.serve", "repro.cluster", "repro.stream",
        "repro.bench"])

    #: MEGA002: modules whose ordered outputs feed schedule/cache keys,
    #: so set-iteration-order must never leak into them.
    determinism_modules: List[str] = field(default_factory=lambda: [
        "repro.core", "repro.graph", "repro.pipeline",
        "repro.resilience", "repro.serve", "repro.cluster",
        "repro.stream", "repro.bench"])

    #: MEGA003: modules declared as vectorised kernels.
    kernel_modules: List[str] = field(default_factory=lambda: [
        "repro.tensor.functional", "repro.models.layers"])

    #: MEGA004: cache-key/cache-store modules that must stay pure.
    purity_modules: List[str] = field(default_factory=lambda: [
        "repro.pipeline.hashing", "repro.pipeline.cache"])

    #: MEGA009: modules allowed to call ``print`` (user-facing CLIs).
    print_allowed: List[str] = field(default_factory=lambda: [
        "repro.cli", "repro.bench.cli", "tools.megalint.cli"])

    #: MEGA011: modules whose ``as_dict``/``replay_surface`` functions
    #: build byte-identical replay/ledger surfaces.
    ledger_modules: List[str] = field(default_factory=lambda: [
        "repro.bench", "repro.serve.stats", "repro.cluster.stats",
        "repro.pipeline.stats", "repro.stream.stats"])

    #: MEGA007: a module docstring shorter than this is a placeholder.
    docstring_min_length: int = 10

    #: Directories the project pass indexes when ``--project`` is given
    #: without explicit paths (the checked whole-program view).
    project_roots: List[str] = field(default_factory=lambda: [
        "src", "tools"])

    #: Directories whose imports count as *uses* for MEGA014
    #: dead-export analysis but which are never themselves linted.
    reference_roots: List[str] = field(default_factory=lambda: [
        "tests", "examples", "benchmarks"])

    #: MEGA015: dotted class paths acting as structural protocols;
    #: classes duck-typing them must not drift from their method set.
    protocol_classes: List[str] = field(default_factory=lambda: [
        "repro.serve.server.ScheduleStore",
        "repro.cluster.routing.LoadBalancePolicy"])

    #: MEGA012: extra taint sinks beyond the replay-surface builders —
    #: dotted function/method qualnames whose outputs feed cache keys
    #: or fault-plan rolls and must stay deterministic.
    taint_sink_functions: List[str] = field(default_factory=lambda: [
        "repro.resilience.faults.FaultPlan.roll"])

    #: Rule IDs disabled globally (config-level, not inline).
    disable: List[str] = field(default_factory=list)

    #: Default baseline file (CLI ``--baseline`` overrides).
    baseline: Optional[str] = None

    @classmethod
    def field_names(cls) -> List[str]:
        return [f.name for f in dataclasses.fields(cls)]


class ConfigError(Exception):
    """Bad pyproject block or unreadable config file."""


def _coerce(name: str, value, template) -> object:
    """Validate a TOML value against the default's type."""
    if isinstance(template, bool) or template is None:
        return value
    if isinstance(template, int) and not isinstance(value, int):
        raise ConfigError(f"[tool.megalint] {name} must be an integer")
    if isinstance(template, list):
        if (not isinstance(value, list)
                or not all(isinstance(v, str) for v in value)):
            raise ConfigError(f"[tool.megalint] {name} must be a "
                              "list of strings")
    if isinstance(template, str) and not isinstance(value, str):
        raise ConfigError(f"[tool.megalint] {name} must be a string")
    return value


def config_from_table(table: dict) -> LintConfig:
    """Build a config from an already-parsed ``[tool.megalint]`` table."""
    config = LintConfig()
    known = set(LintConfig.field_names())
    for raw_key, value in table.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            raise ConfigError(f"[tool.megalint] unknown key {raw_key!r} "
                              f"(known: {sorted(known)})")
        template = getattr(config, key)
        setattr(config, key, _coerce(raw_key, value, template))
    return config


def load_config(pyproject: Union[str, Path, None]) -> LintConfig:
    """Config from ``pyproject.toml`` (defaults when absent/sectionless)."""
    if pyproject is None:
        return LintConfig()
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig()
    if tomllib is None:  # pragma: no cover
        return LintConfig()
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"{path}: invalid TOML: {exc}") from exc
    table = data.get("tool", {}).get("megalint", {})
    return config_from_table(table)
