"""Baseline files: land a new rule before its violations are fixed.

A baseline records the *current* violations as ``path::rule::message``
keys with occurrence counts.  On later runs, up to that many matching
violations are filtered out — so pre-existing debt is tolerated while
any **new** violation (or an old one moving to a new message) still
fails the build.  Line numbers are deliberately excluded from the key
so unrelated edits that shift code around don't invalidate a baseline.

An entry's value is either a bare count or a table carrying a
justification — ``{"count": 1, "why": "public API used by the README
quickstart"}`` — so *sanctioned* violations (as opposed to unpaid
debt) document their reason next to the entry.  ``write_baseline``
emits bare counts; justifications are added by hand when the entry is
a keep, not a TODO.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from tools.megalint.engine import LintResult, Violation

BASELINE_VERSION = 1


class BaselineError(Exception):
    """Unreadable or version-incompatible baseline file."""


def violation_key(violation: Violation) -> str:
    return f"{violation.path}::{violation.rule_id}::{violation.message}"


def write_baseline(path: Union[str, Path], result: LintResult) -> int:
    """Serialise ``result``'s violations; returns the entry count."""
    counts = Counter(violation_key(v) for v in result.violations)
    payload = {
        "version": BASELINE_VERSION,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return sum(counts.values())


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported version "
            f"{data.get('version')!r} (expected {BASELINE_VERSION})")
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path}: 'entries' must be a table")
    out: Dict[str, int] = {}
    for key, value in entries.items():
        if isinstance(value, dict):
            try:
                out[str(key)] = int(value["count"])
            except (KeyError, TypeError, ValueError):
                raise BaselineError(
                    f"baseline {path}: entry {key!r} must carry an "
                    "integer 'count'") from None
        else:
            out[str(key)] = int(value)
    return out


def apply_baseline(result: LintResult,
                   baseline: Dict[str, int]) -> Tuple[LintResult, int]:
    """Filter baselined violations out of ``result`` (in place).

    Returns ``(result, stale)`` where ``stale`` counts baselined
    occurrences that no longer match anything — a hint the baseline
    can shrink.
    """
    budget = dict(baseline)
    kept: List[Violation] = []
    for violation in result.violations:
        key = violation_key(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.baselined += 1
        else:
            kept.append(violation)
    result.violations = kept
    stale = sum(v for v in budget.values() if v > 0)
    return result, stale
