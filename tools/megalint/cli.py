"""Command-line front end: ``python -m tools.megalint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.megalint import rules as _rules  # noqa: F401  (registers rules)
from tools.megalint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.megalint.config import ConfigError, LintConfig, load_config
from tools.megalint.engine import Engine, LintResult
from tools.megalint.registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.megalint",
        description="Repo-specific invariant linter for the MEGA "
                    "reproduction (determinism, layering, hot-path and "
                    "cache contracts).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the configured src root)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--config", default="pyproject.toml",
                        help="pyproject.toml with a [tool.megalint] block")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore pyproject.toml; use built-in defaults")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--disable", default=None, metavar="IDS",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="filter out violations recorded in FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current violations to FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [p.strip() for p in raw.split(",") if p.strip()]


def _report_text(result: LintResult, stale: int, out) -> None:
    for violation in result.violations:
        print(violation.text(), file=out)
    bits = [f"{len(result.violations)} violation(s)",
            f"{result.files_scanned} file(s)",
            f"{len(result.rule_ids)} rule(s)"]
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        bits.append(f"{result.baselined} baselined")
    if stale:
        bits.append(f"{stale} stale baseline entr(y/ies)")
    print("megalint: " + ", ".join(bits), file=out)


def _report_json(result: LintResult, stale: int, out) -> None:
    payload = {
        "version": 1,
        "violations": [v.to_json() for v in result.violations],
        "summary": {
            "violations": len(result.violations),
            "files_scanned": result.files_scanned,
            "rules": result.rule_ids,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline_entries": stale,
        },
    }
    print(json.dumps(payload, indent=2), file=out)


def _list_rules(out) -> None:
    for cls in all_rules():
        print(f"{cls.id}  {cls.name}", file=out)
        print(f"    {cls.rationale}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    try:
        config = (LintConfig() if args.no_config
                  else load_config(args.config))
    except ConfigError as exc:
        print(f"megalint: {exc}", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths] or [Path(config.src_root)]
    for target in targets:
        if not target.exists():
            print(f"megalint: no such path: {target}", file=sys.stderr)
            return 2

    engine = Engine(config=config,
                    select=_split_ids(args.select),
                    disable=_split_ids(args.disable))
    result = engine.run(targets)

    if args.write_baseline:
        count = write_baseline(args.write_baseline, result)
        print(f"megalint: wrote baseline with {count} entr(y/ies) to "
              f"{args.write_baseline}", file=out)
        return 0

    stale = 0
    baseline_path = args.baseline or config.baseline
    if baseline_path:
        try:
            entries = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"megalint: {exc}", file=sys.stderr)
            return 2
        result, stale = apply_baseline(result, entries)

    if args.format == "json":
        _report_json(result, stale, out)
    else:
        _report_text(result, stale, out)
    return 0 if result.ok else 1
