"""Command-line front end: ``python -m tools.megalint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/config error.

``--project`` runs the whole-program pass (symbol table, call graph,
determinism taint — rules MEGA012–015) over the given paths (default:
the configured ``project-roots``) in addition to the per-file rules.
``--changed-only`` narrows the *per-file* rules to files touched in
the working tree (``git diff`` + untracked) while the project pass
still indexes the full tree — cross-module facts are only sound over
the whole program.  ``--format`` adds ``jsonl`` (one JSON object per
violation, summary last) and ``sarif`` (SARIF 2.1.0, the format CI
uploads so violations annotate pull requests).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from tools.megalint import rules as _rules  # noqa: F401  (registers rules)
from tools.megalint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.megalint.config import ConfigError, LintConfig, load_config
from tools.megalint.engine import Engine, LintResult, scan_root_for
from tools.megalint.registry import all_rules

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.megalint",
        description="Repo-specific invariant linter for the MEGA "
                    "reproduction (determinism, layering, hot-path and "
                    "cache contracts, cross-module taint).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "configured src root; with --project, the "
                             "configured project roots)")
    parser.add_argument("--project", action="store_true",
                        help="run the whole-program pass (MEGA012-015: "
                             "taint, call layering, dead exports, "
                             "duck-type drift) in addition to the "
                             "per-file rules")
    parser.add_argument("--changed-only", action="store_true",
                        help="per-file rules only lint files changed vs "
                             "git HEAD (plus untracked); the project "
                             "pass still indexes the whole tree")
    parser.add_argument("--format",
                        choices=("text", "json", "jsonl", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--config", default="pyproject.toml",
                        help="pyproject.toml with a [tool.megalint] block")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore pyproject.toml; use built-in defaults")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--disable", default=None, metavar="IDS",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="filter out violations recorded in FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current violations to FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [p.strip() for p in raw.split(",") if p.strip()]


def _changed_files(targets: Sequence[Path]
                   ) -> Optional[List[Tuple[Path, Path]]]:
    """(path, scan_root) pairs for working-tree changes under targets.

    Changed = different from git HEAD (staged or not) plus untracked.
    Returns None when git is unavailable or this is not a work tree.
    """
    names: List[str] = []
    for cmd in (["git", "diff", "--name-only", "HEAD", "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    pairs: List[Tuple[Path, Path]] = []
    roots = [(scan_root_for(t), t) for t in targets]
    for name in sorted(set(names)):
        if not name.endswith(".py"):
            continue
        path = Path(name)
        if not path.is_file():
            continue  # deleted in the working tree
        resolved = path.resolve()
        for root, target in roots:
            try:
                resolved.relative_to(target.resolve())
            except ValueError:
                continue
            pairs.append((path, root))
            break
    return pairs


def _report_text(result: LintResult, stale: int, out) -> None:
    for violation in result.violations:
        print(violation.text(), file=out)
    bits = [f"{len(result.violations)} violation(s)",
            f"{result.files_scanned} file(s)",
            f"{len(result.rule_ids)} rule(s)"]
    if result.project_files:
        bits.append(f"{result.project_files} project module(s)")
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        bits.append(f"{result.baselined} baselined")
    if stale:
        bits.append(f"{stale} stale baseline entr(y/ies)")
    print("megalint: " + ", ".join(bits), file=out)


def _summary_payload(result: LintResult, stale: int) -> dict:
    return {
        "violations": len(result.violations),
        "files_scanned": result.files_scanned,
        "project_modules": result.project_files,
        "rules": result.rule_ids,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline_entries": stale,
    }


def _report_json(result: LintResult, stale: int, out) -> None:
    payload = {
        "version": 1,
        "violations": [v.to_json() for v in result.violations],
        "summary": _summary_payload(result, stale),
    }
    print(json.dumps(payload, indent=2), file=out)


def _report_jsonl(result: LintResult, stale: int, out) -> None:
    """One JSON object per line: each violation, then the summary.

    Stream-friendly for pre-commit hooks and log scrapers — a consumer
    can stop at the first line without parsing the whole report.
    """
    for violation in result.violations:
        print(json.dumps(violation.to_json(), sort_keys=True), file=out)
    print(json.dumps({"summary": _summary_payload(result, stale)},
                     sort_keys=True), file=out)


def _report_sarif(result: LintResult, stale: int, out) -> None:
    """SARIF 2.1.0 — what the CI job uploads for GitHub annotations."""
    rules_meta = [{
        "id": cls.id,
        "name": cls.name,
        "shortDescription": {"text": cls.rationale},
    } for cls in all_rules()]
    results = [{
        "ruleId": v.rule_id,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": v.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": v.line,
                           "startColumn": v.col + 1},
            },
        }],
    } for v in result.violations]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "megalint",
                "informationUri":
                    "https://example.invalid/docs/static_analysis.md",
                "rules": rules_meta,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    print(json.dumps(payload, indent=2), file=out)


_REPORTERS = {
    "text": _report_text,
    "json": _report_json,
    "jsonl": _report_jsonl,
    "sarif": _report_sarif,
}


def _list_rules(out) -> None:
    for cls in all_rules():
        scope = "project" if getattr(cls, "project", False) else "file"
        print(f"{cls.id}  {cls.name}  [{scope}]", file=out)
        print(f"    {cls.rationale}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    try:
        config = (LintConfig() if args.no_config
                  else load_config(args.config))
    except ConfigError as exc:
        print(f"megalint: {exc}", file=sys.stderr)
        return 2

    if args.paths:
        targets = [Path(p) for p in args.paths]
    elif args.project:
        targets = [Path(p) for p in config.project_roots if Path(p).exists()]
    else:
        targets = [Path(config.src_root)]
    for target in targets:
        if not target.exists():
            print(f"megalint: no such path: {target}", file=sys.stderr)
            return 2

    explicit_files = None
    if args.changed_only:
        explicit_files = _changed_files(targets)
        if explicit_files is None:
            print("megalint: --changed-only needs a git work tree "
                  "(git diff failed)", file=sys.stderr)
            return 2

    engine = Engine(config=config,
                    select=_split_ids(args.select),
                    disable=_split_ids(args.disable))
    result = engine.run(targets,
                        project_targets=targets if args.project else None,
                        explicit_files=explicit_files)

    if args.write_baseline:
        count = write_baseline(args.write_baseline, result)
        print(f"megalint: wrote baseline with {count} entr(y/ies) to "
              f"{args.write_baseline}", file=out)
        return 0

    stale = 0
    baseline_path = args.baseline or config.baseline
    if baseline_path:
        try:
            entries = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"megalint: {exc}", file=sys.stderr)
            return 2
        result, stale = apply_baseline(result, entries)

    _REPORTERS[args.format](result, stale, out)
    return 0 if result.ok else 1
