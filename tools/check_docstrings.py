#!/usr/bin/env python
"""Back-compat shim: the docs gate now lives in megalint (rule MEGA007).

Historically this file implemented the "every public module under
``src/repro`` carries a module docstring" check by itself; that logic
moved into :mod:`tools.megalint.rules.docstrings` when the single gate
grew into a rule engine.  The shim keeps the old entry points —
``find_missing_docstrings`` and ``python tools/check_docstrings.py``
— delegating to the shared implementation, so existing callers and
muscle memory keep working.

Prefer the engine for anything new::

    python -m tools.megalint src --select MEGA007
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:  # direct `python tools/check_docstrings.py`
    sys.path.insert(0, str(_REPO_ROOT))

from tools.megalint.rules.docstrings import (  # noqa: E402
    MIN_LENGTH,
    is_public_module_parts,
    missing_module_docstrings,
)

DEFAULT_ROOT = _REPO_ROOT / "src"

__all__ = ["MIN_LENGTH", "DEFAULT_ROOT", "is_public_module",
           "find_missing_docstrings", "main"]


def is_public_module(path: Path, root: Path) -> bool:
    """True when no component of the module path is underscore-private."""
    rel = path.relative_to(root)
    parts = list(rel.parts[:-1])
    if rel.stem != "__init__":
        parts.append(rel.stem)
    return is_public_module_parts(parts)


def find_missing_docstrings(root: Path = DEFAULT_ROOT) -> List[str]:
    """Repo-relative paths of public modules lacking a real docstring."""
    return missing_module_docstrings(Path(root), min_length=MIN_LENGTH)


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    missing = find_missing_docstrings(root)
    if missing:
        print(f"{len(missing)} public module(s) missing a module docstring:")
        for name in missing:
            print(f"  {name}")
        return 1
    print("docs gate: all public modules documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
