#!/usr/bin/env python
"""Docs gate: every public module under ``src/repro`` must carry a
module docstring.

"Public" means the module name (and every package on its dotted path)
does not start with an underscore; ``__init__.py`` counts as the
package's own docstring.  The check parses files with ``ast`` — nothing
is imported, so it is safe to run against broken code.

Run standalone::

    python tools/check_docstrings.py [src-root]

or through the tier-1 suite (``tests/test_docstring_gate.py``), which
imports :func:`find_missing_docstrings` directly so documentation can't
rot without a test failing.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

#: Minimum length for a docstring to count as documentation rather than
#: a placeholder.
MIN_LENGTH = 10

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src"


def is_public_module(path: Path, root: Path) -> bool:
    """True when no component of the module path is underscore-private."""
    rel = path.relative_to(root)
    parts = list(rel.parts[:-1]) + [rel.stem]
    return all(not p.startswith("_") or p == "__init__" for p in parts)


def module_docstring(path: Path) -> str:
    """The module docstring of ``path`` ('' when absent or unparsable)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:  # a broken file is also a gate failure
        raise SystemExit(f"{path}: syntax error during docs gate: {exc}")
    return ast.get_docstring(tree) or ""


def find_missing_docstrings(root: Path = DEFAULT_ROOT) -> List[str]:
    """Repo-relative paths of public modules lacking a real docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        if not is_public_module(path, root):
            continue
        doc = module_docstring(path)
        if len(doc.strip()) < MIN_LENGTH:
            missing.append(str(path.relative_to(root.parent)))
    return missing


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    missing = find_missing_docstrings(root)
    if missing:
        print(f"{len(missing)} public module(s) missing a module docstring:")
        for name in missing:
            print(f"  {name}")
        return 1
    print("docs gate: all public modules documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
