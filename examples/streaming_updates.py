"""Dynamic-graph serving end to end: deltas, repair, exact invalidation.

Walks the streaming story from docs/streaming.md:

1. apply one small edge delta: the analytic estimate prices it, the
   schedule is patched in place (repair mode), and the versioned-key
   protocol evicts the superseded content key and seeds the new one;
2. the first post-delta admission is an L2 hit — Algorithm 1 never
   reruns for a repaired graph;
3. epoch pinning: a request admitted before the delta reports epoch 0,
   one admitted after reports epoch 1, and untouched graphs keep their
   epochs (and their cache entries);
4. sweep delta sizes to find the repair/recompute crossover: patching
   wins for small deltas, full Algorithm 1 for large ones — the
   decision is analytic, in deterministic work units;
5. a mixed run — queries, deltas, and a seeded replica crash — replays
   byte-identically and still conserves
   received == served + failed + shed.

Run:  python examples/streaming_updates.py [--events 48 --scale 0.004
      --delta-fraction 0.3]
"""

import argparse
import json

from repro.cluster import ClusterConfig, TieredScheduleCache
from repro.core import MegaConfig
from repro.datasets import load_dataset
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import ArrivalProcess, BatchingPolicy, ServerConfig
from repro.serve.queueing import InferenceRequest
from repro.stream import (
    DeltaBatch,
    EdgeDelta,
    GraphTable,
    RepairPolicy,
    ScheduleRepairer,
    StreamMix,
    StreamServer,
    generate_stream,
)
from repro.train.trainer import build_model


def make_server(model, pool, num_graphs=4, fault_plan=None, replicas=3):
    graphs = {f"g{i}": pool[i] for i in range(num_graphs)}
    config = ClusterConfig(
        num_replicas=replicas, policy="hash-affinity",
        server=ServerConfig(
            queue_capacity=16,
            policy=BatchingPolicy(max_batch_size=8)))
    return StreamServer(model, graphs, config,
                        repair_policy=RepairPolicy(),
                        fault_plan=fault_plan)


def insert_batch(table, name, delta_id=0, at=0.5):
    """One guaranteed-structural insert: the first missing edge."""
    present = table.graph(name).edge_set()
    n = table.graph(name).num_nodes
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in present:
                return DeltaBatch(delta_id, name,
                                  ops=(EdgeDelta("insert", u, v),),
                                  submitted_s=at)
    raise SystemExit(f"graph {name!r} is complete")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=48)
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--delta-fraction", type=float, default=0.3)
    args = parser.parse_args()

    dataset = load_dataset("ZINC", scale=args.scale)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    model.eval()
    pool = dataset.test[:6]
    retry = RetryPolicy(max_attempts=3)
    print(f"4 named graphs over a 3-replica cluster, "
          f"{args.events} mixed events\n")

    print("== 1. one delta, repaired in place ==")
    server = make_server(model, pool)
    batch = insert_batch(server.table, "g0")
    record = server.run([], [batch]).stats.records[0]
    est = record.estimate
    print(f"estimate: repair {est.repair_cost} vs rebuild "
          f"{est.rebuild_cost} work units (ratio {est.ratio:.3f}) "
          f"-> mode {record.mode!r}")
    print(f"actual work: {record.work_units} units; key "
          f"{record.old_key[:12]}… -> {record.new_key[:12]}…, "
          f"invalidated L1/L2/disk = {record.invalidated_l1}/"
          f"{record.invalidated_l2}/{record.invalidated_disk}, "
          f"seeded={record.seeded}")

    print("\n== 2. first post-delta admission hits the seeded key ==")
    server = make_server(model, pool, replicas=1)
    batch = insert_batch(server.table, "g0", at=0.5)
    late = InferenceRequest(request_id=0,
                            graph=server.table.graph("g0"),
                            submitted_s=1.0, graph_name="g0")
    result = server.run([late], [batch])
    print(f"schedule_hit={result.response_for(0).schedule_hit} "
          f"(L2 hits: {server.cluster.tiered.tier.l2_hits}) — the "
          f"repaired schedule was seeded at application time")

    print("\n== 3. epoch pinning across a delta ==")
    server = make_server(model, pool)
    batch = insert_batch(server.table, "g0", at=0.5)
    early = InferenceRequest(request_id=0,
                             graph=server.table.graph("g0"),
                             submitted_s=0.0, graph_name="g0")
    late = InferenceRequest(request_id=1,
                            graph=server.table.graph("g0"),
                            submitted_s=1.0, graph_name="g0")
    result = server.run([early, late], [batch])
    print(f"request 0 (pre-delta)  -> epoch "
          f"{result.response_for(0).epoch}")
    print(f"request 1 (post-delta) -> epoch "
          f"{result.response_for(1).epoch}")
    print(f"final epochs: {result.stats.epochs} — only g0 moved; "
          f"untouched graphs keep their cache entries")

    print("\n== 4. the repair/recompute crossover ==")
    config = MegaConfig()
    graph = pool[0]
    present = graph.edge_set()
    n = graph.num_nodes
    candidates = [(u, v) for u in range(n) for v in range(u + 1, n)
                  if (u, v) not in present]
    plan = FaultPlan(seed=0)
    picked = []
    for i in range(16):
        index = min(int(plan.roll("pick", i) * len(candidates)),
                    len(candidates) - 1)
        picked.append(candidates.pop(index))

    def apply_once(ratio, num_ops):
        table = GraphTable({"g": graph}, config)
        repairer = ScheduleRepairer(table, TieredScheduleCache(config),
                                    RepairPolicy(recompute_ratio=ratio))
        ops = tuple(EdgeDelta("insert", u, v)
                    for u, v in picked[:num_ops])
        return repairer.apply(DeltaBatch(0, "g", ops=ops), 0.0)

    print(f"{'Δ edges':>8} {'repair':>8} {'recompute':>10} "
          f"{'policy picks':>14}")
    crossover = 0
    for size in (1, 2, 4, 8, 16):
        repaired = apply_once(float("inf"), size)   # force repair
        recomputed = apply_once(0.0, size)          # force Algorithm 1
        chosen = apply_once(1.0, size).mode         # default policy
        print(f"{size:>8} {repaired.work_units:>8} "
              f"{recomputed.work_units:>10} {chosen:>14}")
        if not crossover and repaired.work_units >= recomputed.work_units:
            crossover = size
    print("repair wins below the crossover"
          + (f" (here: {crossover} edges)" if crossover
             else " at every swept size") +
          "; the default policy flips exactly where the estimate says")

    print("\n== 5. byte-identical mixed replay, crash included ==")
    fault = FaultPlan(seed=11, crash_replicas=(1,),
                      crash_after_batches=2)
    blobs, stats = [], None
    for _ in range(2):
        server = make_server(model, pool, fault_plan=fault)
        requests, deltas = generate_stream(
            server.table, args.events,
            ArrivalProcess(kind="poisson", rate_rps=400.0, seed=5),
            StreamMix(seed=5, delta_fraction=args.delta_fraction))
        stats = server.run(requests, deltas, retry_policy=retry).stats
        blobs.append(json.dumps(stats.as_dict(), sort_keys=True))
    assert blobs[0] == blobs[1], "replay diverged!"
    print(stats.summary_line())
    fleet = stats.cluster
    print(f"crashed replicas: {fleet.crashed_replicas}; "
          f"{fleet.received} received == {fleet.served} served + "
          f"{fleet.failed} failed + {fleet.shed} shed")
    print(f"replay stats identical: {len(blobs[0])} bytes, equal")


if __name__ == "__main__":
    main()
