"""Heterogeneous-graph scheduling (paper §Discussion, HAN-style).

Builds a blocked heterogeneous graph (e.g. author-paper-venue), runs one
MEGA traversal per node type, merges the paths in type-connectivity
order, and reports how much of the workload the diagonal band absorbs
versus the hierarchical cross-type stage.

Run:  python examples/heterogeneous_paths.py
"""

import numpy as np

from repro.hetero import (
    build_hetero_plan,
    hetero_schedule_report,
    random_hetero_graph,
)


def main():
    rng = np.random.default_rng(42)
    hetero = random_hetero_graph(rng, nodes_per_type=[60, 40, 25],
                                 intra_p=0.12, inter_p=0.015)
    print(f"graph: {hetero}")
    print(f"type sizes: {hetero.type_counts().tolist()}")
    print(f"edges between type pairs: "
          f"{dict(sorted(hetero.type_connection_counts().items()))}")

    plan = build_hetero_plan(hetero)
    report = hetero_schedule_report(plan)
    print(f"\ntype order in merged path: {report['type_order']}")
    print(f"merged path length: {report['merged_length']} "
          f"(expansion {report['expansion']:.2f})")
    for t, length in report["segment_lengths"].items():
        lo, hi = plan.segment_of_type(t)
        print(f"  type {t}: segment [{lo}, {hi}) of length {length}")
    print(f"\nintra-type edges covered by diagonal bands: "
          f"{report['intra_coverage']:.0%}")
    print(f"share of all edges handled by the band: "
          f"{report['banded_fraction']:.0%}")
    print(f"cross-type edges routed to the hierarchical merge stage: "
          f"{report['cross_edges']}")

    # The band messages stay within their type segments — the property
    # that lets each type's chunk live on its own device.
    src_seg = np.searchsorted(
        [hi for _, hi in plan.segment_bounds], plan.band_pos_src,
        side="right")
    dst_seg = np.searchsorted(
        [hi for _, hi in plan.segment_bounds], plan.band_pos_dst,
        side="right")
    assert (src_seg == dst_seg).all()
    print("\nevery band message stays inside one type segment — "
          "cross-device traffic is exactly the cross-type edge set.")

    # Train a small HAN-style model on top of the schedule: predict the
    # normalised cross-type connectivity of held-out graphs.
    from repro.hetero import HeteroGNN, HeteroMegaRuntime
    from repro.tensor.optim import Adam

    graphs = [random_hetero_graph(np.random.default_rng(s), [15, 12],
                                  intra_p=0.2,
                                  inter_p=0.02 + 0.02 * (s % 4))
              for s in range(10)]
    targets = [len(g.cross_type_edges()) / g.num_nodes for g in graphs]
    num_edge_types = max(int(g.edge_types.max()) for g in graphs) + 1
    model = HeteroGNN(num_node_types=2, num_edge_types=num_edge_types,
                      hidden_dim=16, num_layers=2)
    runtimes = [HeteroMegaRuntime(g) for g in graphs]
    opt = Adam(model.parameters(), lr=5e-3)
    print("\ntraining HeteroGNN on cross-type connectivity:")
    for step in range(20):
        total = 0.0
        for g, rt, y in zip(graphs, runtimes, targets):
            loss = model.loss(model(g, rt), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            total += loss.item()
        if step % 5 == 0 or step == 19:
            print(f"  step {step:2d}: total loss {total:.4f}")


if __name__ == "__main__":
    main()
