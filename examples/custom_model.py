"""Tutorial: writing your own GNN on the runtime abstraction.

Any model expressed through the :class:`AggregationRuntime` interface
(scatter-to-edges / aggregate / edge-softmax) runs unmodified under the
DGL-style baseline schedule, MEGA's diagonal band, and global attention
— and inherits MEGA's speedup for free.  This example defines a simple
mean-aggregation GNN ("GraphSAGE-mean" flavoured), checks cross-runtime
parity, and trains it briefly.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro.core import MegaConfig, PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.models import BaselineRuntime, MegaRuntime
from repro.models.base import GNNModel, ModelConfig
from repro.tensor import Linear, Module, Tensor
from repro.tensor import functional as F
from repro.tensor.optim import Adam


class MeanSageLayer(Module):
    """h'_u = ReLU(W_self h_u + W_neigh · mean_{v∈N(u)} h_v)."""

    def __init__(self, dim, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.w_self = Linear(dim, dim, rng=rng)
        self.w_neigh = Linear(dim, dim, rng=rng)

    def forward(self, h, e, runtime):
        # One scatter: fetch source rows per message.
        src_rows, _ = runtime.scatter_to_edges(src=h)
        # One gather: sum messages, then normalise by in-degree.
        total = runtime.aggregate_sum(src_rows)
        counts = np.bincount(runtime.msg_dst,
                             minlength=runtime.num_nodes).astype(float)
        inv = Tensor((1.0 / np.maximum(counts, 1.0)).reshape(-1, 1))
        mean_neigh = total * inv
        out = F.relu(self.w_self(h) + self.w_neigh(mean_neigh))
        return out, e   # edge state untouched in this model


class MeanSage(GNNModel):
    """Stack of mean-aggregation layers; everything else is inherited."""

    model_name = "SAGE"

    def _build_layers(self, rng):
        for i in range(self.config.num_layers):
            layer = MeanSageLayer(self.config.hidden_dim, rng=rng)
            setattr(self, f"layer{i}", layer)
            self.layers.append(layer)


def main():
    ds = load_dataset("ZINC", scale=0.008)
    cfg = ModelConfig.for_dataset(ds, hidden_dim=32, num_layers=3)
    model = MeanSage(cfg)

    graphs = ds.train[:32]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig())
             for g in graphs]
    base_rt = BaselineRuntime(batch)
    mega_rt = MegaRuntime(batch, paths)

    # 1. The same parameters compute the same function on both schedules.
    model.eval()
    a = model(batch, base_rt).data
    b = model(batch, mega_rt).data
    print(f"cross-runtime parity: max |Δ| = {np.abs(a - b).max():.2e}")

    # 2. Train under MEGA.
    model.train()
    opt = Adam(model.parameters(), lr=3e-3)
    print("training MeanSage under the MEGA schedule:")
    for step in range(15):
        loss = model.loss(model(batch, mega_rt), batch.labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
        if step % 5 == 0 or step == 14:
            print(f"  step {step:2d}: loss {loss.item():.4f}")

    # 3. And the simulated-GPU story carries over: MEGA's banded kernels
    #    replace the scattered gathers for *any* model on this interface.
    from repro.memsim import GPUDevice
    from repro.models.kernel_plans import simulate_batch

    # MeanSage's op profile is closest to GAT's (1 scatter, gathers, one
    # projection), so use that plan for the cost picture.
    t_base = simulate_batch("GAT", base_rt, GPUDevice(), 32, 3).total_time
    t_mega = simulate_batch("GAT", mega_rt, GPUDevice(), 32, 3).total_time
    print(f"simulated batch: baseline {t_base * 1e3:.3f} ms vs "
          f"mega {t_mega * 1e3:.3f} ms ({t_base / t_mega:.2f}x)")


if __name__ == "__main__":
    main()
