"""Dynamic-graph streaming with incremental path maintenance.

The paper's discussion points at latency-constrained dynamic workloads
(online handwriting / DYGAT).  This example streams edge insertions and
deletions into an :class:`IncrementalPath` and compares the amortised
maintenance cost against rebuilding the schedule from scratch at every
update.

Run:  python examples/dynamic_stream.py [--updates 200]
"""

import argparse
import time

import numpy as np

from repro.core import MegaConfig, PathRepresentation
from repro.core.incremental import IncrementalPath
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=200)
    parser.add_argument("--nodes", type=int, default=120)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    graph = erdos_renyi(rng, args.nodes, 0.05)
    config = MegaConfig(window=2)
    tracker = IncrementalPath(graph, config, rebuild_expansion=2.5)
    print(f"initial: {graph} -> path length {tracker.length}")

    # Pre-generate an update stream: 70% insertions, 30% deletions.
    updates = []
    edges = set(tracker._edges)
    while len(updates) < args.updates:
        u, v = sorted(rng.integers(0, args.nodes, size=2).tolist())
        if u == v:
            continue
        if (u, v) in edges and rng.random() < 0.3:
            updates.append(("remove", u, v))
            edges.discard((u, v))
        elif (u, v) not in edges:
            updates.append(("insert", u, v))
            edges.add((u, v))

    # Incremental maintenance.
    start = time.perf_counter()
    adopted = 0
    for op, u, v in updates:
        if op == "insert":
            adopted += tracker.insert(u, v)
        else:
            tracker.remove(u, v)
    incremental_s = time.perf_counter() - start

    # Rebuild-from-scratch at every update, for comparison.
    start = time.perf_counter()
    current = set(PathRepresentation.from_graph(graph, config).graph.edge_set())
    for op, u, v in updates:
        if op == "insert":
            current.add((u, v))
        else:
            current.discard((u, v))
        src, dst = zip(*sorted(current))
        PathRepresentation.from_graph(
            Graph(args.nodes, np.array(src), np.array(dst)), config)
    rebuild_s = time.perf_counter() - start

    inserts = sum(1 for op, *_ in updates if op == "insert")
    print(f"\n{args.updates} updates "
          f"({inserts} insertions, {args.updates - inserts} deletions)")
    print(f"incremental: {incremental_s * 1e3:8.1f} ms total "
          f"({incremental_s / args.updates * 1e6:.0f} us/update), "
          f"{adopted}/{inserts} insertions adopted in place, "
          f"{tracker.rebuilds - 1} amortised rebuilds")
    print(f"naive rebuild every update: {rebuild_s * 1e3:8.1f} ms total")
    print(f"speedup: {rebuild_s / incremental_s:.1f}x")
    rep = tracker.to_representation()
    print(f"final representation: {rep} (coverage {rep.coverage:.0%})")


if __name__ == "__main__":
    main()
