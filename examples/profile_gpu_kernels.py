"""nvprof-style kernel profiling of GNN training batches.

Replays one training batch of a chosen dataset/model on the simulated
GTX 1080 under both schedules and prints the per-kernel profile the
paper's Section III-A builds its argument on: run-time share, SM
efficiency, memory-stall percentage, global-load transactions.

Run:  python examples/profile_gpu_kernels.py [--dataset ZINC] [--model GT]
"""

import argparse

from repro.core.config import MegaConfig
from repro.core.path import PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.memsim.device import GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime


def profile(name, runtime, model, dim, layers):
    prof = simulate_batch(model, runtime, GPUDevice(), dim, layers)
    print(f"\n--- {name} ---")
    print(f"{'kernel':16s} {'calls':>5s} {'time':>9s} {'share':>7s} "
          f"{'sm_eff':>7s} {'stall':>7s} {'loads':>9s}")
    for row in prof.summary():
        print(f"{row['kernel']:16s} {row['calls']:5d} "
              f"{row['time_s'] * 1e6:7.1f}us {row['time_pct']:7.1%} "
              f"{row['sm_efficiency']:7.2f} {row['memory_stall_pct']:7.2f} "
              f"{row['load_transactions']:9d}")
    print(f"{'TOTAL':16s} {prof.total_calls:5d} "
          f"{prof.total_time * 1e6:7.1f}us  "
          f"norm SM eff {prof.normalized_metric('sm_efficiency'):.3f}  "
          f"norm stall {prof.normalized_metric('memory_stall_pct'):.3f}")
    return prof.total_time


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="ZINC",
                        choices=["ZINC", "AQSOL", "CSL", "CYCLES"])
    parser.add_argument("--model", default="GT", choices=["GCN", "GT"])
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--hidden-dim", type=int, default=128)
    parser.add_argument("--layers", type=int, default=4)
    args = parser.parse_args()

    scale = 3.0 if args.dataset == "CSL" else 0.02
    dataset = load_dataset(args.dataset, scale=scale)
    graphs = dataset.train[:args.batch_size]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig()) for g in graphs]

    print(f"profiling {args.model} on {args.dataset} "
          f"(batch {len(graphs)}, dim {args.hidden_dim}, "
          f"{args.layers} layers)")
    t_base = profile("DGL baseline", BaselineRuntime(batch),
                     args.model, args.hidden_dim, args.layers)
    t_mega = profile("MEGA", MegaRuntime(batch, paths),
                     args.model, args.hidden_dim, args.layers)
    print(f"\nMEGA speedup: {t_base / t_mega:.2f}x")


if __name__ == "__main__":
    main()
