"""Figure 3b / Figure 7 in your terminal.

Recreates the paper's worked illustration: a small graph's original
adjacency matrix next to its path-reorganised, diagonal-banded layout,
plus the traversal schedule itself (virtual jumps marked ``~>``).

Run:  python examples/path_visualization.py
"""

import numpy as np

from repro.core import MegaConfig, PathRepresentation, viz
from repro.graph.graph import from_edge_list


def main():
    # A 7-vertex demonstration graph in the spirit of the paper's
    # Fig. 3a: a cluster (h1..h4), a chain (h4-h5-h6), and a chord.
    edges = [(0, 1), (0, 3), (1, 2), (1, 3), (2, 3),
             (3, 4), (4, 5), (5, 6), (0, 6)]
    graph = from_edge_list(edges, num_nodes=7)
    print(f"demonstration graph: {graph}\n")

    rep = PathRepresentation.from_graph(graph, MegaConfig(window=2))
    print(viz.side_by_side(
        viz.render_adjacency(graph), viz.render_band(rep),
        titles=("original adjacency (Fig. 3b)",
                "path-reorganised band (Fig. 7)")))

    print(f"\ntraversal schedule (window ω={rep.window}):")
    print("  " + viz.render_path(rep))
    print(f"\npath length {rep.length} over {graph.num_nodes} vertices "
          f"(expansion {rep.expansion:.2f}); "
          f"{rep.schedule.revisits} revisits, "
          f"{rep.num_virtual_edges} virtual transitions; "
          f"edge coverage {rep.coverage:.0%}")

    print("\nwhere the time goes (one simulated GT batch on ZINC):")
    from repro.datasets import load_dataset
    from repro.graph.batch import GraphBatch
    from repro.memsim import GPUDevice
    from repro.models.kernel_plans import simulate_batch
    from repro.models.runtime import BaselineRuntime

    ds = load_dataset("ZINC", scale=0.005)
    batch = GraphBatch(ds.train[:32])
    prof = simulate_batch("GT", BaselineRuntime(batch), GPUDevice(),
                          128, 4)
    rows = prof.summary()
    print(viz.render_bar_chart(
        [r["kernel"] for r in rows],
        [r["time_s"] * 1e6 for r in rows], unit="us"))


if __name__ == "__main__":
    main()
