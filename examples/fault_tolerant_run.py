"""Fault-tolerant end-to-end run: crash everything, finish anyway.

One script drives the whole failure matrix from docs/resilience.md:

1. preprocessing under injected worker crashes and a dead executor —
   and proves the recovered schedules are byte-identical to a clean run;
2. cache corruption (flipped byte, truncated payload, stale tmp litter)
   — recomputed and recounted, never raised;
3. training killed mid-run — resumed from an atomic checkpoint to the
   *same* final metric an uninterrupted run reaches, through an
   injected NaN loss and rollback on the way.

Run:  python examples/fault_tolerant_run.py [--epochs 4 --scale 0.004]
"""

import argparse
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import load_dataset
from repro.pipeline import ScheduleCache, pack_entry, precompute_paths, \
    schedule_cache_key
from repro.core import MegaConfig
from repro.resilience import FaultPlan, corrupt_cache_entry
from repro.train import Trainer, build_model


def entry_bytes(result):
    return b"".join(
        arr.tobytes()
        for rep, plan in zip(result.paths, result.plans)
        for arr in pack_entry(rep.schedule, plan).values())


def preprocessing_survives_crashes(dataset):
    graphs = dataset.all_graphs()
    clean = precompute_paths(graphs, workers=2)
    plan = FaultPlan(seed=3, worker_crash_rate=0.4, io_error_rate=0.2,
                     break_pool_chunk=1)
    stormy = precompute_paths(graphs, workers=2, fault_plan=plan,
                              sleep=lambda s: None)
    identical = entry_bytes(clean) == entry_bytes(stormy)
    print(f"[1] preprocessing: {stormy.stats.retries} retries, "
          f"degraded_to_serial={stormy.stats.degraded_to_serial}, "
          f"byte-identical={identical}")
    assert identical
    return graphs


def cache_survives_corruption(graphs, work_dir):
    cache_dir = work_dir / "cache"
    precompute_paths(graphs, cache_dir=cache_dir)
    cache = ScheduleCache(cache_dir)
    keys = [schedule_cache_key(g, MegaConfig()) for g in graphs[:3]]
    for key, mode in zip(keys, ("flip", "truncate", "tmp_litter")):
        corrupt_cache_entry(cache, key, mode)
    # Reopening the cache is the crash-recovery moment: litter from
    # killed writers is swept before any reads happen.
    reopened = ScheduleCache(cache_dir)
    again = precompute_paths(graphs, cache=reopened)
    stats = again.stats.cache
    print(f"[2] cache: {stats.corrupt_checksum} checksum failures "
          f"detected, {reopened.stats.stale_tmp} tmp swept, "
          f"{stats.puts} entries recomputed, run ok={again.ok}")
    assert again.ok and stats.corrupt_checksum == 2
    assert reopened.stats.stale_tmp == 1


def training_survives_kill(dataset, work_dir):
    def trainer(fault_plan=None):
        model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                            seed=5)
        return Trainer(model, dataset, method="baseline", batch_size=32,
                       seed=11, fault_plan=fault_plan)

    epochs = ARGS.epochs
    clean = trainer().fit(epochs)

    # Session one "dies" halfway; session two resumes the trajectory.
    ckpt_dir = work_dir / "ckpt"
    trainer().fit(max(1, epochs // 2), checkpoint_dir=ckpt_dir)
    resumed = trainer().fit(epochs, checkpoint_dir=ckpt_dir, resume=True)
    final_clean = clean.records[-1].val_metric
    final_resumed = resumed.records[-1].val_metric
    print(f"[3] training: killed after epoch {max(1, epochs // 2)}, "
          f"resumed final metric {final_resumed:.6f} "
          f"== clean {final_clean:.6f}")
    assert final_resumed == final_clean

    # Bonus storm: a NaN loss mid-run is absorbed by checkpoint
    # rollback + LR backoff instead of poisoning the metrics.
    nan_dir = work_dir / "nan"
    survivor = trainer(FaultPlan(seed=1, nan_epochs=(max(2, epochs - 1),)))
    stormy = survivor.fit(epochs, checkpoint_dir=nan_dir)
    print(f"[4] training: NaN loss absorbed by "
          f"{survivor.rollbacks} rollback(s); all metrics finite="
          f"{all(np.isfinite(r.val_metric) for r in stormy.records)}")
    assert survivor.rollbacks == 1
    assert len(stormy.records) == epochs
    assert all(np.isfinite(r.train_loss) for r in stormy.records)


def main():
    dataset = load_dataset("ZINC", scale=ARGS.scale)
    work_dir = Path(tempfile.mkdtemp(prefix="mega_resilience_"))
    try:
        graphs = preprocessing_survives_crashes(dataset)
        cache_survives_corruption(graphs, work_dir)
        training_survives_kill(dataset, work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    print("all subsystems recovered; results unchanged")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.004)
    ARGS = parser.parse_args()
    main()
