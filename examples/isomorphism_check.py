"""Weisfeiler-Lehman analysis of path representations (paper Fig. 8).

For graphs of several sizes and two sparsity levels, measures how much
structure the path representation preserves per aggregation hop,
compared with global (fully connected) attention.

Run:  python examples/isomorphism_check.py
"""

import numpy as np

from repro.core import MegaConfig, PathRepresentation
from repro.core.isomorphism import (
    global_similarity_profile,
    path_similarity_profile,
)
from repro.graph.generators import erdos_renyi_with_sparsity

HOPS = 3


def main():
    print(f"{'sparsity':>8s} {'nodes':>6s} {'mode':>10s} "
          + " ".join(f"{'hop' + str(h):>7s}" for h in range(1, HOPS + 1)))
    for sparsity in (0.05, 1.0):
        for n in (16, 32, 64):
            rng = np.random.default_rng(n)
            g = erdos_renyi_with_sparsity(rng, n, sparsity)
            rep = PathRepresentation.from_graph(g, MegaConfig())
            rows = {
                "p (masked)": path_similarity_profile(
                    g, rep, HOPS, include_virtual=False),
                "p (virtual)": path_similarity_profile(
                    g, rep, HOPS, include_virtual=True),
                "g (global)": global_similarity_profile(g, HOPS),
            }
            for mode, sims in rows.items():
                values = " ".join(f"{s:7.3f}" for s in sims[1:])
                print(f"{sparsity:8.2f} {n:6d} {mode:>10s} {values}")
    print("\n'p (masked)' is the band restricted to real edges (what the "
          "models aggregate): identical to the input graph at full "
          "coverage.  'p (virtual)' additionally explores hypothetical "
          "connections; 'g' is global attention, which destroys local "
          "structure on sparse graphs.")


if __name__ == "__main__":
    main()
