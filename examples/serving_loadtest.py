"""Inference serving end to end: checkpoint → server → seeded loadtest.

Walks the whole serving story from docs/serving.md:

1. train a small model briefly and save an atomic checkpoint;
2. load it back through the model registry and stand up an
   `InferenceServer` with a schedule cache;
3. serve a seeded bursty request stream under a client retry policy —
   backpressure, micro-batching, and schedule-cache reuse all visible
   in the printed `ServerStats`;
4. rerun the identical loadtest and show the stats are byte-identical;
5. rerun against the *warm* schedule cache and show the hit rate jump.

Run:  python examples/serving_loadtest.py [--requests 64 --scale 0.004]
"""

import argparse
import json
import shutil
import tempfile
from pathlib import Path

from repro.datasets import load_dataset
from repro.resilience import RetryPolicy
from repro.serve import (
    ArrivalProcess,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
    ModelSpec,
    ServerConfig,
    generate_requests,
)
from repro.pipeline import ScheduleCache
from repro.train import Trainer, build_model
from repro.train.checkpoint import save_checkpoint


def train_and_checkpoint(dataset, scale, path):
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2)
    trainer = Trainer(model, dataset, method="mega", batch_size=16)
    history = trainer.fit(num_epochs=2)
    save_checkpoint(path, model, epoch=len(history.records),
                    metric=history.records[-1].val_metric)
    print(f"trained 2 epochs, val metric "
          f"{history.records[-1].val_metric:.4f}, checkpoint -> {path}")
    return model


def build_server(spec_scale, checkpoint, cache_dir):
    registry = ModelRegistry()
    registry.register("demo", ModelSpec(
        model="GCN", dataset="ZINC", scale=spec_scale, hidden_dim=16,
        num_layers=2, checkpoint=str(checkpoint)))
    loaded = registry.load("demo")
    server = InferenceServer(
        loaded.model,
        cache=ScheduleCache(cache_dir),
        config=ServerConfig(
            queue_capacity=8,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.01,
                                  bucket_width=16)))
    return loaded, server


def loadtest(server, pool, num_requests):
    process = ArrivalProcess(kind="bursty", rate_rps=30000.0, seed=7,
                             burst_factor=8.0, burst_len=12)
    requests = generate_requests(pool, num_requests, process)
    retry = RetryPolicy(max_attempts=4, backoff_base_s=0.004)
    return server.run(requests, retry_policy=retry)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.004)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="serving-demo-"))
    try:
        dataset = load_dataset("ZINC", scale=args.scale)
        checkpoint = workdir / "model.npz"

        print("== 1. train and checkpoint ==")
        train_and_checkpoint(dataset, args.scale, checkpoint)

        print("\n== 2. registry load + server ==")
        loaded, server = build_server(args.scale, checkpoint,
                                      workdir / "schedules")
        pool = loaded.dataset.test[:6]
        print(f"serving {loaded.spec.model} (epoch {loaded.epoch} "
              f"checkpoint) over a pool of {len(pool)} graphs")

        print("\n== 3. seeded bursty loadtest ==")
        result = loadtest(server, pool, args.requests)
        stats = result.stats
        print(stats.summary_line())
        print(f"   max queue depth {stats.max_queue_depth} "
              f"(capacity 8), {stats.retried} retried, "
              f"{stats.dropped} dropped")

        print("\n== 4. byte-identical replay ==")
        _, fresh = build_server(args.scale, checkpoint,
                                workdir / "schedules-replay")
        replay = loadtest(fresh, pool, args.requests)
        blob_a = json.dumps(stats.as_dict(), sort_keys=True)
        blob_b = json.dumps(replay.stats.as_dict(), sort_keys=True)
        assert blob_a == blob_b, "replay diverged!"
        print(f"replay stats identical: {len(blob_a)} bytes, equal")

        print("\n== 5. warm schedule cache ==")
        _, warm = build_server(args.scale, checkpoint,
                               workdir / "schedules")  # reuse dir
        warm_stats = loadtest(warm, pool, args.requests).stats
        print(f"cold run:  {stats.cache.hits} hits / "
              f"{stats.cache.misses} misses "
              f"(hit rate {stats.schedule_hit_rate:.2f})")
        print(f"warm run:  {warm_stats.cache.hits} hits / "
              f"{warm_stats.cache.misses} misses "
              f"(hit rate {warm_stats.schedule_hit_rate:.2f})")
        assert warm_stats.cache.misses == 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
