"""Molecular property regression: the paper's ZINC workflow end-to-end.

Trains a Graph Transformer on the ZINC-like dataset under the DGL-style
baseline and under MEGA, prints both convergence trajectories against
the simulated GTX-1080 clock, then repeats MEGA with 20% edge dropping
(the Fig. 15 configuration).

Run:  python examples/molecular_regression.py [--epochs N]
"""

import argparse

import numpy as np

from repro.core.config import MegaConfig
from repro.core.edge_drop import drop_edges
from repro.datasets import load_dataset
from repro.datasets.base import GraphDataset
from repro.train import Trainer, build_model, run_convergence
from repro.train.metrics import speedup_to_target


def dropped_copy(dataset, fraction, seed=0):
    """DropEdge at training time only; evaluation keeps full graphs."""
    rng = np.random.default_rng(seed)
    return GraphDataset(name=dataset.name, task=dataset.task,
                        train=[drop_edges(g, fraction, rng)
                               for g in dataset.train],
                        validation=dataset.validation,
                        test=dataset.test,
                        num_node_types=dataset.num_node_types,
                        num_edge_types=dataset.num_edge_types,
                        num_classes=dataset.num_classes)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--scale", type=float, default=0.015,
                        help="dataset scale (1.0 = paper-sized 10k/1k/1k)")
    args = parser.parse_args()

    dataset = load_dataset("ZINC", scale=args.scale)
    print(f"dataset: {dataset}")

    # --- Baseline vs MEGA (Fig. 12 configuration) ----------------------
    result = run_convergence(dataset, "GT", hidden_dim=32, num_layers=3,
                             batch_size=32, num_epochs=args.epochs, lr=3e-3)
    print("\nepoch  loss    val MAE  dgl clock  mega clock")
    for b, m in zip(result.baseline.records, result.mega.records):
        print(f"{b.epoch:5d}  {b.train_loss:.4f}  {b.val_metric:.4f}  "
              f"{b.sim_time_s:8.4f}s  {m.sim_time_s:8.4f}s")
    print(f"\nconvergence speedup: {result.speedup:.2f}x "
          f"(paper reports ~2x for ZINC+GT)")
    print(f"MEGA preprocessing (one-time, CPU): "
          f"{result.mega.records[0].preprocess_s:.2f}s wall")

    # --- MEGA + DropEdge (Fig. 15 configuration) -----------------------
    dropped = dropped_copy(dataset, 0.2)
    base_trainer = Trainer(build_model("GT", dataset, hidden_dim=32,
                                       num_layers=3),
                           dataset, method="baseline", batch_size=32,
                           lr=3e-3)
    base_history = base_trainer.fit(args.epochs)
    drop_trainer = Trainer(build_model("GT", dropped, hidden_dim=32,
                                       num_layers=3),
                           dropped, method="mega", batch_size=32, lr=3e-3)
    drop_history = drop_trainer.fit(args.epochs)
    speedup = speedup_to_target(drop_history, base_history)
    print(f"\nwith 20% edge dropping: convergence speedup {speedup:.2f}x, "
          f"final MAE {drop_history.records[-1].val_metric:.4f} vs "
          f"baseline {base_history.records[-1].val_metric:.4f}")


if __name__ == "__main__":
    main()
