"""Quickstart: MEGA in five minutes.

Builds a small molecular-like graph, runs the MEGA preprocessing
(Algorithm 1), inspects the resulting path representation and diagonal
band, and compares one simulated training batch under the DGL-style
baseline and under MEGA.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    MegaConfig,
    PathRepresentation,
    make_dense_band_plan,
    workload_summary,
)
from repro.core.isomorphism import path_similarity_profile
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.graph.generators import molecular_like
from repro.memsim.device import GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime


def main():
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A graph, and its MEGA preprocessing.
    # ------------------------------------------------------------------
    graph = molecular_like(rng, 23)
    print(f"input graph: {graph}")

    rep = PathRepresentation.from_graph(graph, MegaConfig())
    print(f"path representation: {rep}")
    print(f"  path (first 15 positions): {rep.path[:15].tolist()} ...")
    print(f"  virtual transitions: {rep.num_virtual_edges}, "
          f"revisits: {rep.schedule.revisits}")

    dense = make_dense_band_plan(rep)
    print(f"  dense band: {dense.length} positions x "
          f"{2 * dense.window + 1} slots, fill {dense.fill_ratio:.2f}")

    summary = workload_summary(rep)
    print(f"  band touches {summary['band_slots']} slots vs "
          f"{summary['dense_slots']} for global attention "
          f"({summary['dense_saving']:.0%} saved)")

    sims = path_similarity_profile(graph, rep, hops=3,
                                   include_virtual=False)
    print(f"  WL similarity per hop (masked band): "
          f"{[round(s, 3) for s in sims]}")

    # ------------------------------------------------------------------
    # 2. One simulated GPU batch: baseline vs MEGA.
    # ------------------------------------------------------------------
    dataset = load_dataset("ZINC", scale=0.005)
    graphs = dataset.train[:32]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig()) for g in graphs]

    results = {}
    for name, runtime in (("dgl-baseline", BaselineRuntime(batch)),
                          ("mega", MegaRuntime(batch, paths))):
        prof = simulate_batch("GT", runtime, GPUDevice(), dim=128,
                              num_layers=4)
        results[name] = prof.total_time
        print(f"\n{name}: simulated batch {prof.total_time * 1e3:.3f} ms, "
              f"SM efficiency "
              f"{prof.normalized_metric('sm_efficiency'):.2f}")
        for row in prof.summary()[:4]:
            print(f"    {row['kernel']:14s} {row['time_pct']:6.1%}  "
                  f"sm_eff={row['sm_efficiency']:.2f}")

    print(f"\nMEGA speedup on this batch: "
          f"{results['dgl-baseline'] / results['mega']:.2f}x")


if __name__ == "__main__":
    main()
