"""Distributed-training communication analysis (paper §IV-B6).

Partitions a graph for k workers two ways — a conventional balanced
edge-cut node partition, and MEGA's contiguous path partition — and
compares how many partition pairs must exchange embeddings per
aggregation round and how many rows cross the wire.

Run:  python examples/distributed_partitioning.py [--nodes 600]
"""

import argparse

import numpy as np

from repro.core import MegaConfig, PathRepresentation
from repro.distributed import communication_sweep
from repro.graph.generators import erdos_renyi
from repro.graph.partition import (
    cut_edges,
    edge_cut_partition,
    replication_factor,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=600)
    parser.add_argument("--mean-degree", type=float, default=6.0)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    graph = erdos_renyi(rng, args.nodes, args.mean_degree / args.nodes)
    rep = PathRepresentation.from_graph(graph, MegaConfig(window=2))
    print(f"graph: {graph}")
    print(f"path:  {rep}")

    ks = [2, 4, 8, 16, 32]
    rows = communication_sweep(graph, rep, ks)
    print(f"\n{'k':>3s} {'edge-cut pairs':>15s} {'edge-cut rows':>14s} "
          f"{'path pairs':>11s} {'path rows':>10s} {'saving':>8s}")
    for row in rows:
        saving = 1 - row["path_volume"] / max(row["edge_cut_volume"], 1)
        print(f"{row['k']:3d} {row['edge_cut_pairs']:15d} "
              f"{row['edge_cut_volume']:14d} {row['path_pairs']:11d} "
              f"{row['path_volume']:10d} {saving:8.1%}")

    k = 8
    assignment = edge_cut_partition(graph, k, np.random.default_rng(1))
    print(f"\nedge-cut detail at k={k}: "
          f"{cut_edges(graph, assignment)} cut edges, "
          f"replication factor "
          f"{replication_factor(graph, assignment, k):.2f}")
    print("path partition at any k communicates only with its two "
          "neighbours: O(k) messages total, as claimed in Section IV-B6.")


if __name__ == "__main__":
    main()
