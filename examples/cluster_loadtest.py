"""Sharded serving end to end: router → replicas → seeded failover.

Walks the whole cluster story from docs/cluster.md:

1. stand up a 3-replica cluster and compare the three load-balance
   policies on identical traffic — hash-affinity's replica-local (L1)
   hit rate is the visible win of content-aware routing;
2. crash a replica mid-run with a seeded `FaultPlan` and watch the
   survivors absorb its keys and queue (failovers, rebalanced arcs,
   zero failed requests);
3. rerun the identical crash scenario and show the fleet stats are
   byte-identical — failures are part of the replay surface;
4. take every replica down with no retry budget and show nothing is
   shed silently: each lost request carries a typed reason.

Run:  python examples/cluster_loadtest.py [--requests 64 --scale 0.004]
"""

import argparse
import json

from repro.cluster import Cluster, ClusterConfig
from repro.datasets import load_dataset
from repro.errors import ClusterError
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import (
    ArrivalProcess,
    BatchingPolicy,
    ServerConfig,
    generate_requests,
)
from repro.train.trainer import build_model


def make_cluster(model, policy, fault_plan=None):
    config = ClusterConfig(
        num_replicas=3, policy=policy,
        server=ServerConfig(
            queue_capacity=16,
            policy=BatchingPolicy(max_batch_size=8)))
    return Cluster(model, config, fault_plan=fault_plan)


def make_requests(pool, num_requests):
    process = ArrivalProcess(kind="poisson", rate_rps=400.0, seed=0)
    return generate_requests(pool, num_requests, process)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.004)
    args = parser.parse_args()

    dataset = load_dataset("ZINC", scale=args.scale)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    model.eval()
    pool = dataset.test[:6]
    retry = RetryPolicy(max_attempts=3)
    print(f"3 replicas over a pool of {len(pool)} graphs, "
          f"{args.requests} requests\n")

    print("== 1. routing policies on identical traffic ==")
    for policy in ("round-robin", "least-queue", "hash-affinity"):
        stats = make_cluster(model, policy).run(
            make_requests(pool, args.requests), retry_policy=retry).stats
        print(f"{policy:>14}: L1 {stats.l1_hit_rate:.2f}  "
              f"L2 {stats.l2_hit_rate:.2f}  "
              f"p95 {stats.p95_latency_s * 1e3:.1f} ms  "
              f"({stats.served}/{stats.received} served)")
    print("hash-affinity pins repeat graphs to one replica, so hits "
          "stay replica-local")

    print("\n== 2. seeded failover ==")
    plan = FaultPlan(seed=0, crash_replicas=(1,), crash_after_batches=2)
    result = make_cluster(model, "hash-affinity", plan).run(
        make_requests(pool, args.requests), retry_policy=retry)
    stats = result.stats
    print(stats.summary_line())
    crashed = next(r for r in stats.replicas if r.crashed)
    print(f"   replica {crashed.replica_id} crashed at "
          f"{crashed.crashed_at_s * 1e3:.1f} ms (sim); "
          f"{stats.failovers} requests failed over, "
          f"{stats.rebalanced_arcs} ring arcs rebalanced, "
          f"{stats.failed} failed")

    print("\n== 3. byte-identical replay, crash included ==")
    replay = make_cluster(model, "hash-affinity", plan).run(
        make_requests(pool, args.requests), retry_policy=retry)
    blob_a = json.dumps(stats.as_dict(), sort_keys=True)
    blob_b = json.dumps(replay.stats.as_dict(), sort_keys=True)
    assert blob_a == blob_b, "replay diverged!"
    print(f"replay stats identical: {len(blob_a)} bytes, equal")

    print("\n== 4. nothing is shed silently ==")
    doom = FaultPlan(seed=0, crash_replicas=(0, 1, 2),
                     crash_after_batches=0)
    wiped = make_cluster(model, "hash-affinity", doom).run(
        make_requests(pool, 8))          # no retry budget
    print(f"all replicas down: {wiped.stats.served} served, "
          f"{wiped.stats.failed} typed failures")
    lost = wiped.stats.failures[0]
    try:
        wiped.response_for(lost.request_id)
    except ClusterError as exc:
        print(f"response_for({lost.request_id}) -> ClusterError: {exc}")
    assert wiped.stats.received == wiped.stats.served + wiped.stats.failed


if __name__ == "__main__":
    main()
