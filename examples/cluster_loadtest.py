"""Sharded serving end to end: router → replicas → seeded self-healing.

Walks the whole cluster story from docs/cluster.md:

1. stand up a 3-replica cluster and compare the three load-balance
   policies on identical traffic — hash-affinity's replica-local (L1)
   hit rate is the visible win of content-aware routing;
2. crash a replica mid-run with a seeded `FaultPlan` and watch the
   survivors absorb its keys and queue (failovers, rebalanced arcs,
   zero failed requests);
3. rerun the identical crash scenario and show the fleet stats are
   byte-identical — failures are part of the replay surface;
4. take every replica down with no retry budget and show nothing is
   shed silently: each lost request carries a typed reason;
5. let the crashed replica *recover* (`--recover-after`): it rejoins
   the ring as a new incarnation with a cold L1 and re-warms through
   L2 promotion — the ring heals to fresh-ring placement exactly;
6. stretch one replica's service times (`--slow-replica`) and arm a
   circuit breaker: the straggler is routed around and its queue
   hedged to healthy replicas, no retry budget spent.

Run:  python examples/cluster_loadtest.py [--requests 64 --scale 0.004
      --recover-after 0.05 --slow-replica 0 --slow-factor 3.0]
"""

import argparse
import json

from repro.cluster import Cluster, ClusterConfig
from repro.datasets import load_dataset
from repro.errors import ClusterError
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import (
    ArrivalProcess,
    BatchingPolicy,
    ServerConfig,
    generate_requests,
)
from repro.train.trainer import build_model


def make_cluster(model, policy, fault_plan=None, **config_kwargs):
    config = ClusterConfig(
        num_replicas=3, policy=policy,
        server=ServerConfig(
            queue_capacity=16,
            policy=BatchingPolicy(max_batch_size=8)),
        **config_kwargs)
    return Cluster(model, config, fault_plan=fault_plan)


def make_requests(pool, num_requests):
    process = ArrivalProcess(kind="poisson", rate_rps=400.0, seed=0)
    return generate_requests(pool, num_requests, process)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--recover-after", type=float, default=0.05,
                        help="seconds (sim) before a crashed replica "
                             "rejoins in section 5")
    parser.add_argument("--slow-replica", type=int, default=0,
                        help="replica id straggling in section 6")
    parser.add_argument("--slow-factor", type=float, default=3.0,
                        help="service-time multiplier for the straggler")
    args = parser.parse_args()

    dataset = load_dataset("ZINC", scale=args.scale)
    model = build_model("GCN", dataset, hidden_dim=16, num_layers=2,
                        seed=0)
    model.eval()
    pool = dataset.test[:6]
    retry = RetryPolicy(max_attempts=3)
    print(f"3 replicas over a pool of {len(pool)} graphs, "
          f"{args.requests} requests\n")

    print("== 1. routing policies on identical traffic ==")
    for policy in ("round-robin", "least-queue", "hash-affinity"):
        stats = make_cluster(model, policy).run(
            make_requests(pool, args.requests), retry_policy=retry).stats
        print(f"{policy:>14}: L1 {stats.l1_hit_rate:.2f}  "
              f"L2 {stats.l2_hit_rate:.2f}  "
              f"p95 {stats.p95_latency_s * 1e3:.1f} ms  "
              f"({stats.served}/{stats.received} served)")
    print("hash-affinity pins repeat graphs to one replica, so hits "
          "stay replica-local")

    print("\n== 2. seeded failover ==")
    plan = FaultPlan(seed=0, crash_replicas=(1,), crash_after_batches=2)
    result = make_cluster(model, "hash-affinity", plan).run(
        make_requests(pool, args.requests), retry_policy=retry)
    stats = result.stats
    print(stats.summary_line())
    crashed = next(r for r in stats.replicas if r.crashed)
    print(f"   replica {crashed.replica_id} crashed at "
          f"{crashed.crashed_at_s * 1e3:.1f} ms (sim); "
          f"{stats.failovers} requests failed over, "
          f"{stats.rebalanced_arcs} ring arcs rebalanced, "
          f"{stats.failed} failed")

    print("\n== 3. byte-identical replay, crash included ==")
    replay = make_cluster(model, "hash-affinity", plan).run(
        make_requests(pool, args.requests), retry_policy=retry)
    blob_a = json.dumps(stats.as_dict(), sort_keys=True)
    blob_b = json.dumps(replay.stats.as_dict(), sort_keys=True)
    assert blob_a == blob_b, "replay diverged!"
    print(f"replay stats identical: {len(blob_a)} bytes, equal")

    print("\n== 4. nothing is shed silently ==")
    doom = FaultPlan(seed=0, crash_replicas=(0, 1, 2),
                     crash_after_batches=0)
    wiped = make_cluster(model, "hash-affinity", doom).run(
        make_requests(pool, 8))          # no retry budget
    print(f"all replicas down: {wiped.stats.served} served, "
          f"{wiped.stats.failed} typed failures")
    lost = wiped.stats.failures[0]
    try:
        wiped.response_for(lost.request_id)
    except ClusterError as exc:
        print(f"response_for({lost.request_id}) -> ClusterError: {exc}")
    assert wiped.stats.received == wiped.stats.served + wiped.stats.failed

    print("\n== 5. the crash heals: recovery and L1 re-warm ==")
    healing = FaultPlan(seed=0, crash_replicas=(1,),
                        crash_after_batches=1,
                        recover_after_s=args.recover_after,
                        recover_jitter_s=args.recover_after / 5)
    healed = make_cluster(model, "hash-affinity", healing).run(
        make_requests(pool, args.requests), retry_policy=retry).stats
    rec = healed.recoveries[0]
    print(f"replica {rec.replica_id} rejoined at "
          f"{rec.recovered_at_s * 1e3:.1f} ms (sim) as incarnation "
          f"{rec.incarnation}, "
          f"{(rec.recovered_at_s - rec.crashed_at_s) * 1e3:.1f} ms "
          f"after the crash")
    print(f"ring arcs net {healed.rebalanced_arcs} — the healed ring "
          f"routes like one that never lost the replica")
    print(f"cold-L1 warm-up: {rec.warmup_l1_hits}/{rec.warmup_lookups} "
          f"L1 (rate {rec.warmup_l1_hit_rate:.2f}), "
          f"{rec.warmup_l2_hits} promoted from L2, first L1 hit after "
          f"{rec.lookups_to_first_l1_hit} lookups")
    assert healed.recovered_replicas == 1 and healed.rebalanced_arcs == 0

    print("\n== 6. straggler routed around: breaker + hedging ==")
    sluggish = FaultPlan(seed=0, slow_replicas=(args.slow_replica,),
                         slow_factor=args.slow_factor)
    guarded = make_cluster(model, "hash-affinity", sluggish,
                           breaker_threshold=2).run(
        make_requests(pool, args.requests), retry_policy=retry).stats
    print(f"replica {args.slow_replica} serving "
          f"{args.slow_factor:.0f}x slow: breaker tripped "
          f"{guarded.breaker_trips}x, {guarded.hedges} queued requests "
          f"hedged to healthy replicas (no retry budget spent)")
    print(f"{guarded.served}/{guarded.received} served, "
          f"{guarded.failed} failed — slowness alone is not an error")
    assert guarded.received == (guarded.served + guarded.failed
                                + guarded.shed)


if __name__ == "__main__":
    main()
