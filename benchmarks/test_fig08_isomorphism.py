"""Fig. 8 — WL isomorphism of the path representation vs global attention.

Paper: at sparsity levels 0.05 and 1, over growing node counts, the
path representation ('p') keeps a similarity of 1 at 1-hop aggregation
and stays far above global attention ('g') as the hop count grows.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.core.isomorphism import (
    global_similarity_profile,
    path_similarity_profile,
)
from repro.graph.generators import erdos_renyi_with_sparsity

NODE_COUNTS = (16, 32, 64)
SPARSITIES = (0.05, 1.0)
HOPS = 3


def compute():
    rows = []
    for sparsity in SPARSITIES:
        for n in NODE_COUNTS:
            rng = np.random.default_rng(n)
            g = erdos_renyi_with_sparsity(rng, n, sparsity)
            rep = PathRepresentation.from_graph(g, MegaConfig())
            # Exact band (attention masked to real edges): the mode the
            # models run; 1-hop identity must hold.
            p_masked = path_similarity_profile(g, rep, HOPS,
                                               include_virtual=False)
            # Exploratory band including virtual edges (Fig. 8's 'p').
            p_virtual = path_similarity_profile(g, rep, HOPS,
                                                include_virtual=True)
            g_profile = global_similarity_profile(g, HOPS)
            row = {"sparsity": sparsity, "nodes": n}
            for h in range(1, HOPS + 1):
                row[f"p(hop{h})"] = p_virtual[h]
                row[f"g(hop{h})"] = g_profile[h]
            row["p_masked(hop1)"] = p_masked[1]
            rows.append(row)
    return rows


def test_fig08_isomorphism(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    cols = (["sparsity", "nodes"]
            + [f"p(hop{h})" for h in range(1, HOPS + 1)]
            + [f"g(hop{h})" for h in range(1, HOPS + 1)]
            + ["p_masked(hop1)"])
    print_table("Fig. 8: WL similarity, path (p) vs global (g)", rows, cols)
    for row in rows:
        # The masked band is identical to the graph at every hop.
        assert row["p_masked(hop1)"] == 1.0
        if row["sparsity"] == 1.0:
            # Fully connected: global attention IS the graph.
            assert row["g(hop1)"] == 1.0
        else:
            # Sparse: the path representation preserves far more
            # structure than global mixing at every hop.
            for h in range(1, HOPS + 1):
                assert row[f"p(hop{h})"] >= row[f"g(hop{h})"]
            assert row["p(hop1)"] > 0.2
