"""Extension — hierarchical multi-path scheduling for hetero graphs.

Quantifies the paper's discussion-section sketch: per-type paths cover
all intra-type edges with the diagonal band; only cross-type edges go
through the hierarchical merge stage.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.hetero import (
    build_hetero_plan,
    hetero_schedule_report,
    random_hetero_graph,
)

CONFIGS = (
    ("2 types, balanced", [50, 50], 0.10, 0.01),
    ("3 types, skewed", [80, 40, 20], 0.10, 0.02),
    ("4 types, sparse x", [35, 35, 35, 35], 0.15, 0.005),
)


def compute():
    rows = []
    for label, sizes, intra_p, inter_p in CONFIGS:
        hetero = random_hetero_graph(np.random.default_rng(3), sizes,
                                     intra_p=intra_p, inter_p=inter_p)
        report = hetero_schedule_report(build_hetero_plan(hetero))
        rows.append({
            "config": label,
            "nodes": hetero.num_nodes,
            "edges": hetero.num_edges,
            "banded %": report["banded_fraction"],
            "intra cov": report["intra_coverage"],
            "cross edges": report["cross_edges"],
            "expansion": report["expansion"],
        })
    return rows


def test_ext_hetero(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Extension: hetero multi-path scheduling", rows,
                ["config", "nodes", "edges", "banded %", "intra cov",
                 "cross edges", "expansion"])
    for row in rows:
        # Every intra-type edge lands in a band.
        assert row["intra cov"] == pytest.approx(1.0)
        # The band handles the majority of the workload when intra-type
        # connectivity dominates.
        assert row["banded %"] > 0.5
        assert row["expansion"] < 3.5
