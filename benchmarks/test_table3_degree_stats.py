"""Table III — degree-distribution consistency statistics.

Paper: small μ(σ(d)) and tiny σ(d_min)/σ(d_mean) per dataset (consistent
degree shapes), CSL exactly regular (all zeros), and KS similarity μ(ε)
close to 1 — justifying one unfolding policy per dataset.
"""

import pytest

from benchmarks.conftest import print_table
from repro.datasets import load_dataset
from repro.datasets.statistics import table_three_row

PAPER_EPS = {"ZINC": 0.94, "AQSOL": 0.87, "CSL": 1.0, "CYCLES": 0.71}


def compute_rows(scale):
    rows = []
    for name in PAPER_EPS:
        ds = load_dataset(name, scale=scale if name != "CSL" else 1.0)
        r = table_three_row(ds)
        rows.append({
            "dataset": name,
            "mu(sigma(d))": r.mean_degree_std,
            "sigma(d_min)": r.std_min_degree,
            "sigma(d_max)": r.std_max_degree,
            "sigma(d_mean)": r.std_mean_degree,
            "mu(eps)": r.mean_ks_similarity,
            "paper mu(eps)": PAPER_EPS[name],
        })
    return rows


def test_table3_degree_stats(benchmark, bench_scale):
    rows = benchmark.pedantic(compute_rows, args=(bench_scale,),
                              rounds=1, iterations=1)
    print_table("Table III: degree-distribution consistency", rows,
                ["dataset", "mu(sigma(d))", "sigma(d_min)", "sigma(d_max)",
                 "sigma(d_mean)", "mu(eps)", "paper mu(eps)"])
    by_name = {r["dataset"]: r for r in rows}
    # CSL is exactly regular.
    assert by_name["CSL"]["mu(sigma(d))"] == 0.0
    assert by_name["CSL"]["mu(eps)"] == pytest.approx(1.0)
    # Degree shapes are consistent across instances for every dataset.
    for r in rows:
        assert r["sigma(d_mean)"] < 0.2
        assert r["mu(eps)"] > 0.7
    # CYCLES has the least-similar distributions, as in the paper.
    assert (by_name["CYCLES"]["mu(eps)"]
            <= min(by_name["ZINC"]["mu(eps)"], by_name["CSL"]["mu(eps)"]))
