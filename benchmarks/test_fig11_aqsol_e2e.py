"""Fig. 11 — AQSOL end-to-end convergence (paper: ≈2.6x speedup).

Loss/metric versus simulated wall clock for the baseline and MEGA; at
full coverage both share the numeric trajectory, so the speedup is the
clock ratio to the shared target.
"""

import pytest

from benchmarks.e2e_common import run_e2e


def test_fig11_aqsol_e2e(benchmark):
    result = benchmark.pedantic(
        run_e2e, args=("AQSOL", "GT"),
        kwargs={"num_epochs": 8, "hidden_dim": 32, "num_layers": 3},
        rounds=1, iterations=1)
    # MEGA converges materially faster (paper: ~2.6x on this dataset).
    assert result.speedup > 1.3
    assert result.speedup < 6.0
    # Accuracy is preserved (identical at full coverage).
    assert result.final_metric_mega == pytest.approx(
        result.final_metric_baseline, rel=1e-6)
    # Training actually made progress.
    records = result.baseline.records
    assert records[-1].train_loss < records[0].train_loss
