"""Fig. 14 — CYCLES end-to-end convergence with GCN (paper: ≈1.6x).

CYCLES is the sparsest dataset (disconnected filler forests), so the
path representation needs jumps; the speedup is correspondingly the
smallest of the four datasets in the paper.
"""

import pytest

from benchmarks.e2e_common import run_e2e


def test_fig14_cycles_e2e(benchmark):
    result = benchmark.pedantic(
        run_e2e, args=("CYCLES", "GCN"),
        kwargs={"num_epochs": 14, "hidden_dim": 32, "num_layers": 3,
                "scale": 0.008},
        rounds=1, iterations=1)
    assert result.speedup > 1.1
    assert result.final_metric_mega == pytest.approx(
        result.final_metric_baseline, rel=1e-6)
    # Above the 50% chance level of the binary task.
    assert result.baseline.best_metric() > 0.5
