"""Fig. 6 — GPU kernel profiling: global loads, memory stalls, calls.

Paper: both graph kernels (cub and dgl) show "a notable deficiency in
data locality, evidenced by the substantial percentage of stalls and the
excessive volume of global loads"; sgemm does not.
"""

import pytest

from benchmarks import ledger_adapter
from benchmarks.conftest import cached_profile, print_table

KERNELS = ("sgemm", "dgl::scatter", "dgl::gather", "cub::sort")


def compute():
    rows = []
    for model in ("GCN", "GT"):
        prof = cached_profile("ZINC", model, "baseline",
                              batch_size=64, hidden_dim=128)
        aggs = prof.by_kernel()
        for kernel in KERNELS:
            agg = aggs[kernel]
            rows.append({
                "model": model,
                "kernel": kernel,
                "calls": agg.calls,
                "global loads": agg.load_transactions,
                "loads/call": agg.load_transactions / agg.calls,
                "stall %": agg.memory_stall_pct,
                "l2 hit": agg.l2_hit_rate,
            })
    return rows


def test_fig06_kernel_profiling(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 6: kernel profiling (ZINC, batch 64, dim 128)",
                rows, ["model", "kernel", "calls", "global loads",
                       "loads/call", "stall %", "l2 hit"])
    ledger_adapter.emit_rows(
        "kernels", "fig06_kernel_profiling", rows,
        label_columns=("model", "kernel"),
        config={"dataset": "ZINC", "batch_size": 64, "hidden_dim": 128,
                "method": "baseline"})
    for model in ("GCN", "GT"):
        sub = {r["kernel"]: r for r in rows if r["model"] == model}
        # Graph kernels stall far more than the dense GEMM.
        assert sub["dgl::gather"]["stall %"] > sub["sgemm"]["stall %"]
        assert sub["dgl::scatter"]["stall %"] > sub["sgemm"]["stall %"]
        # And issue heavy global-load traffic per call.
        assert (sub["dgl::gather"]["loads/call"]
                > 0.5 * sub["sgemm"]["loads/call"])
    # GT makes more scatter calls than GCN (Table I).
    gcn_calls = [r for r in rows
                 if r["model"] == "GCN" and r["kernel"] == "dgl::scatter"]
    gt_calls = [r for r in rows
                if r["model"] == "GT" and r["kernel"] == "dgl::scatter"]
    assert gt_calls[0]["calls"] > gcn_calls[0]["calls"]
