"""Ablation — edge-coverage target θ.

θ < 1 lets the scheduler stop before covering every edge: shorter paths
and fewer messages, at the cost of dropping attention edges (WL
similarity decays).  This quantifies the accuracy/efficiency dial the
paper's Section III-B introduces.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.core.isomorphism import path_similarity_profile
from repro.graph.generators import erdos_renyi

THETAS = (0.5, 0.7, 0.9, 1.0)


def compute():
    g = erdos_renyi(np.random.default_rng(13), 100, 0.08)
    rows = []
    for theta in THETAS:
        rep = PathRepresentation.from_graph(
            g, MegaConfig(window=2, coverage=theta))
        sims = path_similarity_profile(g, rep, hops=2,
                                       include_virtual=False)
        rows.append({
            "theta": theta,
            "coverage": rep.coverage,
            "path length": rep.length,
            "messages": 2 * rep.band.num_edges,
            "wl sim (1 hop)": sims[1],
            "wl sim (2 hop)": sims[2],
        })
    return rows


def test_ablation_coverage(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: coverage target θ", rows,
                ["theta", "coverage", "path length", "messages",
                 "wl sim (1 hop)", "wl sim (2 hop)"])
    for row in rows:
        assert row["coverage"] >= row["theta"] - 1e-9
    # Monotone trade-off: higher θ → more messages, better similarity.
    messages = [r["messages"] for r in rows]
    sims = [r["wl sim (1 hop)"] for r in rows]
    assert messages == sorted(messages)
    assert sims == sorted(sims)
    # Full coverage restores exactness.
    assert rows[-1]["wl sim (1 hop)"] == 1.0
    assert rows[-1]["wl sim (2 hop)"] == 1.0
