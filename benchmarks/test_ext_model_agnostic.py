"""Extension — MEGA's speedup is model-agnostic (GCN, GT, GAT).

The scheduling operates below the model: any architecture built on
scatter/gather benefits.  GAT (the paper's graph-attention citation
[14]) is the lightest model — the least neural work to amortise graph
operations — so it should gain at least as much as GCN.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.memsim import GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime

MODELS = ("GCN", "GT", "GAT")


def compute():
    ds = load_dataset("ZINC", scale=0.015)
    graphs = ds.train[:64]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig())
             for g in graphs]
    rows = []
    for model in MODELS:
        base = simulate_batch(model, BaselineRuntime(batch),
                              GPUDevice(), 128, 4)
        mega = simulate_batch(model, MegaRuntime(batch, paths),
                              GPUDevice(), 128, 4)
        graph_share = sum(
            v for k, v in base.time_percentages().items()
            if k.startswith(("dgl", "cub")))
        rows.append({
            "model": model,
            "dgl ms": base.total_time * 1e3,
            "mega ms": mega.total_time * 1e3,
            "speedup": base.total_time / mega.total_time,
            "baseline graph %": graph_share,
        })
    return rows


def test_ext_model_agnostic(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Extension: speedup across architectures "
                "(ZINC, batch 64, dim 128)", rows,
                ["model", "dgl ms", "mega ms", "speedup",
                 "baseline graph %"])
    by_model = {r["model"]: r for r in rows}
    for row in rows:
        assert row["speedup"] > 1.2, row
    # The lighter the neural side, the more graph ops dominate, the
    # bigger MEGA's win: GAT >= GCN is the expected ordering.
    assert (by_model["GAT"]["baseline graph %"]
            >= by_model["GT"]["baseline graph %"] - 0.1)
