"""Pipeline ablation — cold vs warm preprocessing and worker scaling.

Not a paper figure: this measures the infrastructure the reproduction
adds on top (``repro.pipeline``).  The claim being asserted is the
amortisation story — a warm cache serves every schedule without running
Algorithm 1, and worker fan-out changes wall-clock but never output.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.datasets import load_dataset
from repro.pipeline import precompute_paths


@pytest.fixture(scope="module")
def zinc_graphs(bench_scale):
    # module-level bench_scale fixture is session-scoped; reuse it.
    return load_dataset("ZINC", scale=bench_scale).all_graphs()


def compute(zinc_graphs, cache_root):
    rows = []
    cold_dir = cache_root / "cold"
    t0 = time.perf_counter()
    cold = precompute_paths(zinc_graphs, cache_dir=cold_dir)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = precompute_paths(zinc_graphs, cache_dir=cold_dir)
    warm_s = time.perf_counter() - t0
    rows.append({"run": "cold (w=1)", "wall s": cold_s,
                 "computed": cold.stats.computed,
                 "hits": cold.stats.cache.hits})
    rows.append({"run": "warm (w=1)", "wall s": warm_s,
                 "computed": warm.stats.computed,
                 "hits": warm.stats.cache.hits})
    t0 = time.perf_counter()
    par = precompute_paths(zinc_graphs, workers=4)
    par_s = time.perf_counter() - t0
    rows.append({"run": "cold (w=4, no cache)", "wall s": par_s,
                 "computed": par.stats.computed, "hits": 0})
    return rows, cold, warm, par


def test_pipeline_cache(benchmark, zinc_graphs, tmp_path):
    rows, cold, warm, par = benchmark.pedantic(
        compute, args=(zinc_graphs, tmp_path), rounds=1, iterations=1)
    print_table("Pipeline: schedule cache + worker fan-out", rows,
                ["run", "wall s", "computed", "hits"])
    n = len(zinc_graphs)
    # Warm run is pure cache traffic and skips every traversal.
    assert warm.stats.cache.hits == n
    assert warm.stats.computed == 0
    assert rows[1]["wall s"] < rows[0]["wall s"]
    # Parallel fan-out reproduces serial output exactly.
    for a, b in zip(cold.paths, par.paths):
        assert np.array_equal(a.schedule.path, b.schedule.path)
        assert a.schedule.cover_positions == b.schedule.cover_positions
