"""Ablation — MEGA vs node-reordering baselines (GNNAdvisor-style).

Section II-B argues relabeling policies (degree sort, BFS, RCM) improve
locality but cannot regularise the *schedule* itself.  This bench runs
the baseline pipeline on reordered graphs and compares against MEGA: the
reorderings narrow the gap but MEGA should still win.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.graph.reorder import REORDER_POLICIES, apply_order
from repro.memsim.device import GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime

POLICIES = ("identity", "degree", "bfs", "rcm")


def compute():
    ds = load_dataset("ZINC", scale=0.01)
    graphs = ds.train[:64]
    rows = []
    for policy in POLICIES:
        relabelled = [apply_order(g, REORDER_POLICIES[policy](g))
                      for g in graphs]
        batch = GraphBatch(relabelled)
        prof = simulate_batch("GT", BaselineRuntime(batch), GPUDevice(),
                              128, 4)
        rows.append({"schedule": f"dgl + {policy}",
                     "batch ms": prof.total_time * 1e3,
                     "SM eff": prof.normalized_metric("sm_efficiency")})
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig()) for g in graphs]
    prof = simulate_batch("GT", MegaRuntime(batch, paths), GPUDevice(),
                          128, 4)
    rows.append({"schedule": "mega", "batch ms": prof.total_time * 1e3,
                 "SM eff": prof.normalized_metric("sm_efficiency")})
    return rows


def test_ablation_reorder(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: reordering baselines vs MEGA (ZINC, GT)", rows,
                ["schedule", "batch ms", "SM eff"])
    mega = next(r for r in rows if r["schedule"] == "mega")
    identity = next(r for r in rows if r["schedule"] == "dgl + identity")
    for row in rows:
        if row["schedule"] == "mega":
            continue
        # MEGA beats every relabeling-only baseline.
        assert mega["batch ms"] < row["batch ms"], row
    # Reorderings help the baseline at most modestly.
    best_reorder = min(r["batch ms"] for r in rows
                       if r["schedule"] != "mega")
    assert best_reorder <= identity["batch ms"] * 1.05
