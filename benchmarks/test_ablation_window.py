"""Ablation — diagonal window width ω.

DESIGN.md calls out the window as MEGA's central knob: wider windows
cover high-degree vertices with fewer revisits (shorter paths) but pay
more masked band slots (redundant compute).  This sweep quantifies the
trade-off and checks the adaptive choice sits near the sweet spot.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import (
    MegaConfig,
    PathRepresentation,
    adaptive_window,
    make_dense_band_plan,
    theoretical_revisit_bound,
)
from repro.graph.generators import erdos_renyi

WINDOWS = (1, 2, 4, 8)


def compute():
    g = erdos_renyi(np.random.default_rng(11), 120, 0.06)
    rows = []
    for window in WINDOWS:
        rep = PathRepresentation.from_graph(g, MegaConfig(window=window))
        dense = make_dense_band_plan(rep)
        rows.append({
            "window": window,
            "path length": rep.length,
            "expansion": rep.expansion,
            "revisits": rep.schedule.revisits,
            "bound": theoretical_revisit_bound(g.degrees(), window),
            "band fill": dense.fill_ratio,
            "band slots": dense.num_slots,
        })
    return rows, g


def test_ablation_window(benchmark):
    rows, g = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: window width vs path size and band fill", rows,
                ["window", "path length", "expansion", "revisits", "bound",
                 "band fill", "band slots"])
    adaptive = adaptive_window(g)
    print(f"(adaptive window for this graph: {adaptive})")
    lengths = [r["path length"] for r in rows]
    fills = [r["band fill"] for r in rows]
    # Wider windows shorten the path ...
    assert lengths == sorted(lengths, reverse=True)
    # ... but dilute the band with masked slots.
    assert fills == sorted(fills, reverse=True)
    # Revisits shrink (weakly) as the window widens; the printed "bound"
    # column is the paper's optimistic estimate, reported for reference
    # only — it assumes each appearance covers ω incident edges, which
    # random graphs rarely allow.
    revisits = [r["revisits"] for r in rows]
    assert revisits == sorted(revisits, reverse=True)
    # The adaptive policy picks a width inside the swept range.
    assert WINDOWS[0] <= adaptive <= WINDOWS[-1]
