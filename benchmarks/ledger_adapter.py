"""Bridge from the figure/ablation suites to the ``BENCH_*.json`` ledgers.

The benchmark suites under ``benchmarks/`` print eyeball-able tables;
this adapter lets the same rows *also* land in a machine-readable
ledger without changing how the suites run.  It is opt-in: set

    REPRO_BENCH_FROM_PYTEST=<directory>

and every ``emit_rows(...)`` call merges its rows into
``<directory>/BENCH_<area>.json`` (creating or updating the entry named
after the emitting figure).  Unset, ``emit_rows`` is a no-op, so plain
``pytest benchmarks/`` behaves exactly as before.

Row dicts are flattened into ledger metrics: string-valued columns form
the row label (``ZINC/GCN``), numeric columns become keys like
``ZINC/GCN.sgemm``.  The entry fingerprint hashes the flattened metrics'
key set plus the emitting workload name, so ``compare`` can tell "the
figure changed shape" from "a number regressed".
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence


def _output_dir() -> Optional[Path]:
    value = os.environ.get("REPRO_BENCH_FROM_PYTEST")
    return Path(value) if value else None


def flatten_rows(rows: Sequence[Mapping],
                 label_columns: Optional[Sequence[str]] = None
                 ) -> Dict[str, float]:
    """``[{"dataset": "ZINC", "sgemm": 0.9}] -> {"ZINC.sgemm": 0.9}``.

    ``label_columns`` names the identifying columns (default: every
    string-valued column); the rest become ``<label>.<column>`` metrics.
    """
    metrics: Dict[str, float] = {}
    for index, row in enumerate(rows):
        if label_columns is None:
            label_parts = [str(v) for v in row.values()
                           if isinstance(v, str)]
        else:
            label_parts = [str(row[c]) for c in label_columns if c in row]
        label = "/".join(label_parts) or f"row{index}"
        for column, value in row.items():
            if label_columns is not None and column in label_columns:
                continue
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            metrics[f"{label}.{column}"] = value
    return metrics


def emit_rows(area: str, workload: str, rows: Sequence[Mapping],
              seed: int = 0,
              label_columns: Optional[Sequence[str]] = None,
              config: Optional[Mapping] = None) -> Optional[Path]:
    """Merge one figure's rows into ``BENCH_<area>.json`` (if enabled)."""
    directory = _output_dir()
    if directory is None or not rows:
        return None
    from repro.bench.ledger import (LEDGER_SCHEMA_VERSION, LedgerEntry,
                                    environment_block, ledger_path,
                                    validate_ledger)

    metrics = flatten_rows(rows, label_columns=label_columns)
    digest = hashlib.sha256()
    digest.update(f"pytest-rows:{workload}:".encode("utf-8"))
    digest.update("\n".join(sorted(metrics)).encode("utf-8"))
    entry = LedgerEntry(workload=workload, seed=seed,
                        fingerprint=digest.hexdigest(),
                        config=dict(config or {}), metrics=metrics)
    path = ledger_path(directory, area)
    if path.is_file():
        data = json.loads(path.read_text(encoding="utf-8"))
        validate_ledger(data, source=str(path))
    else:
        data = {"schema_version": LEDGER_SCHEMA_VERSION, "area": area,
                "entries": [], "environment": environment_block()}
    entries: List[dict] = [e for e in data["entries"]
                           if e.get("workload") != workload]
    entries.append(entry.to_json_dict())
    data["entries"] = sorted(entries, key=lambda e: e["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
