"""Extension — incremental path maintenance for streaming graphs.

Compares the amortised cost of absorbing edge updates in place against
rebuilding the schedule per update (the naive dynamic-graph baseline).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.core.incremental import IncrementalPath
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph

NUM_UPDATES = 120


def compute():
    rng = np.random.default_rng(1)
    graph = erdos_renyi(rng, 100, 0.06)
    config = MegaConfig(window=2)

    tracker = IncrementalPath(graph, config)
    updates = []
    edges = set(tracker._edges)
    while len(updates) < NUM_UPDATES:
        u, v = sorted(rng.integers(0, 100, size=2).tolist())
        if u == v:
            continue
        if (u, v) in edges and rng.random() < 0.3:
            updates.append(("remove", u, v))
            edges.discard((u, v))
        elif (u, v) not in edges:
            updates.append(("insert", u, v))
            edges.add((u, v))

    start = time.perf_counter()
    adopted = 0
    for op, u, v in updates:
        if op == "insert":
            adopted += tracker.insert(u, v)
        else:
            tracker.remove(u, v)
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    current = set(graph.edge_set())
    for op, u, v in updates[:40]:   # naive baseline sampled (it is slow)
        if op == "insert":
            current.add((u, v))
        else:
            current.discard((u, v))
        src, dst = zip(*sorted(current))
        PathRepresentation.from_graph(
            Graph(100, np.array(src), np.array(dst)), config)
    rebuild_s = (time.perf_counter() - start) * (NUM_UPDATES / 40)

    return {
        "incremental_s": incremental_s,
        "rebuild_s": rebuild_s,
        "adopted": adopted,
        "rebuilds": tracker.rebuilds - 1,
        "coverage": tracker.coverage,
        "final_rep": tracker.to_representation(),
    }


def test_ext_dynamic(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {"strategy": "incremental", "total ms": out["incremental_s"] * 1e3,
         "us/update": out["incremental_s"] / NUM_UPDATES * 1e6},
        {"strategy": "rebuild each update", "total ms": out["rebuild_s"] * 1e3,
         "us/update": out["rebuild_s"] / NUM_UPDATES * 1e6},
    ]
    print_table(f"Extension: dynamic maintenance over {NUM_UPDATES} updates",
                rows, ["strategy", "total ms", "us/update"])
    print(f"adopted in place: {out['adopted']}, amortised rebuilds: "
          f"{out['rebuilds']}, coverage after stream: {out['coverage']:.0%}")
    # Incremental maintenance amortises at least an order of magnitude.
    assert out["incremental_s"] * 10 < out["rebuild_s"]
    # Validity is never sacrificed.
    assert out["coverage"] == 1.0
    rep = out["final_rep"]
    delta = np.abs(rep.band.pos_src - rep.band.pos_dst)
    assert delta.max(initial=0) <= rep.window
