"""Ablation — CPU preprocessing cost of Algorithm 1.

The paper decouples preprocessing (CPU) from training (GPU).  This bench
measures real wall time of the traversal as graphs grow and checks the
cost scales near-linearly in n + m — i.e., preprocessing stays a
one-time, amortisable cost.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.graph.generators import erdos_renyi

SIZES = (50, 100, 200, 400)


def compute():
    rows = []
    for n in SIZES:
        g = erdos_renyi(np.random.default_rng(n), n, 4.0 / n)
        start = time.perf_counter()
        rep = PathRepresentation.from_graph(g, MegaConfig())
        elapsed = time.perf_counter() - start
        rows.append({
            "nodes": n,
            "edges": g.num_edges,
            "wall ms": elapsed * 1e3,
            "ms per (n+m)": elapsed * 1e3 / (n + g.num_edges),
            "expansion": rep.expansion,
        })
    return rows


def test_ablation_preprocessing(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: Algorithm 1 preprocessing cost", rows,
                ["nodes", "edges", "wall ms", "ms per (n+m)", "expansion"])
    # Near-linear scaling: per-unit cost grows by at most ~8x across a
    # 8x size range (quadratic behaviour would blow well past this).
    per_unit = [r["ms per (n+m)"] for r in rows]
    assert per_unit[-1] < 8 * max(per_unit[0], 1e-6)
    # Expansion stays bounded for sparse graphs.
    for row in rows:
        assert row["expansion"] < 3.0
