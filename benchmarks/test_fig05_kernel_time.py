"""Fig. 5 — run-time percentage per GPU kernel (baseline, dim 64).

Paper setting: hidden dim 64, batch sizes 128 and 256.  Key shapes:
graph kernels (dgl + cub) plus Memcpy consume a large share of the
epoch; GT spends a larger share on graph operations than GCN (its 5x
scatter calls); CSL's constant graph size keeps its mix stable across
batch sizes.
"""

import pytest

from benchmarks import ledger_adapter
from benchmarks.conftest import cached_profile, print_table

DATASETS = ("ZINC", "AQSOL", "CSL", "CYCLES")
GROUPS = {
    "sgemm": ("sgemm",),
    "graph(dgl+cub)": ("dgl::scatter", "dgl::gather", "cub::sort"),
    "elementwise": ("elementwise",),
    "Memcpy": ("Memcpy",),
}


def share(prof, names):
    pct = prof.time_percentages()
    return sum(pct.get(n, 0.0) for n in names)


def compute():
    rows = []
    for dataset in DATASETS:
        for model in ("GCN", "GT"):
            for batch in (128, 256):
                prof = cached_profile(dataset, model, "baseline",
                                      batch_size=batch, hidden_dim=64)
                row = {"dataset": dataset, "model": model, "batch": batch}
                for label, names in GROUPS.items():
                    row[label] = share(prof, names)
                rows.append(row)
    return rows


def test_fig05_kernel_time(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 5: kernel run-time percentages (baseline, dim 64)",
                rows,
                ["dataset", "model", "batch"] + list(GROUPS))
    ledger_adapter.emit_rows(
        "kernels", "fig05_kernel_time", rows,
        label_columns=("dataset", "model", "batch"),
        config={"hidden_dim": 64, "method": "baseline"})
    by_key = {(r["dataset"], r["model"], r["batch"]): r for r in rows}
    for dataset in DATASETS:
        for batch in (128, 256):
            gcn = by_key[(dataset, "GCN", batch)]
            gt = by_key[(dataset, "GT", batch)]
            # GT is more graph-op-bound than GCN (Table I's 5x scatters).
            assert gt["graph(dgl+cub)"] > gcn["graph(dgl+cub)"] - 0.05, (
                dataset, batch)
            # Graph operations are a major cost in every configuration.
            assert gt["graph(dgl+cub)"] > 0.3
    # CSL's fixed graph size keeps its kernel mix the most stable
    # across batch sizes.
    def drift(ds):
        a = by_key[(ds, "GCN", 128)]["graph(dgl+cub)"]
        b = by_key[(ds, "GCN", 256)]["graph(dgl+cub)"]
        return abs(a - b)

    assert drift("CSL") <= max(drift(d) for d in DATASETS) + 1e-9
