"""Extension — global attention as a model-level comparator (Fig. 1 / §II).

The paper argues global attention is execution-efficient but pays
quadratic redundancy, while graph attention is work-efficient but
irregular; MEGA claims both.  This bench trains the same GT under all
three runtimes and compares message volume and learning behaviour.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.models import (
    BaselineRuntime,
    GlobalAttentionRuntime,
    GraphTransformer,
    MegaRuntime,
    ModelConfig,
)
from repro.tensor.optim import Adam

STEPS = 12


def compute():
    ds = load_dataset("ZINC", scale=0.006)
    graphs = ds.train[:24]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig()) for g in graphs]
    runtimes = {
        "graph (dgl)": BaselineRuntime(batch),
        "mega": MegaRuntime(batch, paths),
        "global": GlobalAttentionRuntime(batch),
    }
    rows = []
    for name, rt in runtimes.items():
        cfg = ModelConfig.for_dataset(ds, hidden_dim=16, num_layers=2,
                                      seed=3)
        model = GraphTransformer(cfg)
        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(STEPS):
            loss = model.loss(model(batch, rt), batch.labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        rows.append({
            "attention": name,
            "messages": rt.num_messages,
            "messages/node": rt.num_messages / batch.num_nodes,
            "first loss": losses[0],
            "last loss": losses[-1],
        })
    return rows, batch


def test_ext_global_attention(benchmark):
    rows, batch = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Extension: attention regimes on one ZINC batch", rows,
                ["attention", "messages", "messages/node", "first loss",
                 "last loss"])
    by_name = {r["attention"]: r for r in rows}
    # Quadratic redundancy: global processes many times the messages.
    assert (by_name["global"]["messages"]
            > 5 * by_name["graph (dgl)"]["messages"])
    # MEGA processes exactly the graph's message volume.
    assert by_name["mega"]["messages"] == by_name["graph (dgl)"]["messages"]
    # All three regimes learn (loss decreases).
    for row in rows:
        assert row["last loss"] < row["first loss"], row
