"""Ablation — traversal start policy.

Algorithm 1 is initialised "at a specific node"; this sweep quantifies
how much the choice matters across graph families.  Expectation: modest
effect on sparse graphs (the correlate objective dominates), with
peripheral starts best on chain-like topologies.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.schedule import traverse
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    molecular_like,
)

POLICIES = ("max_degree", "min_degree", "peripheral", "zero")


def compute():
    rng = np.random.default_rng(21)
    families = {
        "molecular": molecular_like(rng, 40),
        "erdos-renyi": erdos_renyi(rng, 60, 0.08),
        "power-law": barabasi_albert(rng, 60, 2),
        "grid": grid_graph(6, 10),
    }
    rows = []
    for name, g in families.items():
        row = {"graph": name}
        for policy in POLICIES:
            result = traverse(g, window=2, start=policy)
            row[policy] = result.length
        rows.append(row)
    return rows


def test_ablation_start(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: start policy vs path length (window 2)",
                rows, ["graph"] + list(POLICIES))
    for row in rows:
        lengths = [row[p] for p in POLICIES]
        # All policies produce full-coverage paths of comparable length:
        # the greedy objective, not the seed, does the work.
        assert max(lengths) < 1.35 * min(lengths), row
