"""Fig. 12 — ZINC end-to-end convergence with GT (paper: ≈2x speedup)."""

import pytest

from benchmarks.e2e_common import run_e2e


def test_fig12_zinc_e2e(benchmark):
    result = benchmark.pedantic(
        run_e2e, args=("ZINC", "GT"),
        kwargs={"num_epochs": 8, "hidden_dim": 32, "num_layers": 3},
        rounds=1, iterations=1)
    assert result.speedup > 1.3
    assert result.final_metric_mega == pytest.approx(
        result.final_metric_baseline, rel=1e-6)
    records = result.baseline.records
    assert records[-1].train_loss < records[0].train_loss
