"""Extension — simulated strong scaling of distributed training rounds.

Extends §IV-B6 from volume counting to round-time modelling: path
partitions keep communication constant per device (two halo exchanges)
while edge cuts approach all-to-all, so path layouts scale further.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.distributed import scaling_sweep
from repro.graph.generators import erdos_renyi

KS = (2, 4, 8, 16)


def compute():
    g = erdos_renyi(np.random.default_rng(9), 2000, 0.003)
    rep = PathRepresentation.from_graph(g, MegaConfig(window=2))
    return scaling_sweep(g, rep, list(KS), feature_dim=64), rep


def test_ext_scaling(benchmark):
    rows, rep = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Extension: strong scaling of one aggregation round",
                rows, ["k", "edge_cut_round_s", "path_round_s",
                       "edge_cut_scaling", "path_scaling",
                       "edge_cut_comm_share", "path_comm_share"])
    for row in rows:
        # The path layout is never behind at any width.
        assert row["path_round_s"] <= row["edge_cut_round_s"] * 1.05
        assert row["path_comm_share"] <= row["edge_cut_comm_share"] + 0.05
    # Path scaling keeps improving with k; edge cut saturates earlier.
    path_curve = [r["path_scaling"] for r in rows]
    assert path_curve == sorted(path_curve)
    assert rows[-1]["path_scaling"] > rows[-1]["edge_cut_scaling"]
