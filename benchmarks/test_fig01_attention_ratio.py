"""Fig. 1b — graph-attention / global-attention time ratio.

Paper: the ratio exceeds 1 and grows as graphs get bigger, showing that
sparse graph attention is slower than dense global attention despite
doing less arithmetic.
"""

import pytest

from benchmarks.conftest import print_table
from repro.profiling import attention_time_ratio

NODE_COUNTS = (64, 128, 256, 512)
FEATURE_DIMS = (64, 128)
SPARSITY = 0.05


def compute_ratios():
    rows = []
    for n in NODE_COUNTS:
        row = {"nodes": n}
        for d in FEATURE_DIMS:
            row[f"ratio(d={d})"] = attention_time_ratio(n, d, SPARSITY)
        rows.append(row)
    return rows


def test_fig01_attention_ratio(benchmark):
    rows = benchmark.pedantic(compute_ratios, rounds=1, iterations=1)
    print_table("Fig. 1b: graph/global attention time ratio "
                f"(sparsity={SPARSITY})",
                rows, ["nodes"] + [f"ratio(d={d})" for d in FEATURE_DIMS])
    # Shape claims: ratio > 1 everywhere, increasing with node count.
    for d in FEATURE_DIMS:
        series = [r[f"ratio(d={d})"] for r in rows]
        assert all(v > 1.0 for v in series)
        assert series[-1] > 2 * series[0]
