"""Fig. 13 — CSL end-to-end convergence (paper: ≈2.2x speedup).

CSL is the classification stress case: 4-regular graphs separable only
through positional encodings.  The reproduction must both learn (train
accuracy above chance) and show MEGA's clock advantage.
"""

import pytest

from benchmarks.e2e_common import run_e2e


def test_fig13_csl_e2e(benchmark):
    result = benchmark.pedantic(
        run_e2e, args=("CSL", "GT"),
        kwargs={"num_epochs": 10, "hidden_dim": 32, "num_layers": 3,
                "batch_size": 24, "lr": 2e-3},
        rounds=1, iterations=1)
    assert result.speedup > 1.2
    assert result.final_metric_mega == pytest.approx(
        result.final_metric_baseline, rel=1e-6)
    # Above the 25% chance level of the 4-class task.
    assert result.baseline.best_metric() > 0.3
