"""Fig. 9 — normalised memory metrics: MEGA vs DGL across all settings.

Paper setting: batch 64, hidden dim 128 (the baseline's worst case).
Shapes: MEGA shows consistently high SM efficiency and low stall
percentage on every dataset/model; DGL fluctuates, and DGL-GT's SM
efficiency is far below DGL-GCN's (5x more aggregation work).
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_profile, print_table

DATASETS = ("ZINC", "AQSOL", "CSL", "CYCLES")


def compute():
    rows = []
    for model in ("GCN", "GT"):
        for dataset in DATASETS:
            row = {"model": model, "dataset": dataset}
            for method, label in (("baseline", "dgl"), ("mega", "mega")):
                prof = cached_profile(dataset, model, method,
                                      batch_size=64, hidden_dim=128)
                row[f"{label} SM eff"] = prof.normalized_metric(
                    "sm_efficiency")
                row[f"{label} stall"] = prof.normalized_metric(
                    "memory_stall_pct")
            rows.append(row)
    return rows


def test_fig09_memory_metrics(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 9: normalized SM efficiency / memory stalls "
                "(batch 64, dim 128)", rows,
                ["model", "dataset", "dgl SM eff", "mega SM eff",
                 "dgl stall", "mega stall"])
    for row in rows:
        # MEGA dominates on both metrics in every setting.
        assert row["mega SM eff"] > row["dgl SM eff"], row
        assert row["mega stall"] < row["dgl stall"], row
    # MEGA's efficiency is *stable* across datasets; DGL's fluctuates more.
    for model in ("GCN", "GT"):
        sub = [r for r in rows if r["model"] == model]
        mega_spread = np.ptp([r["mega SM eff"] for r in sub])
        dgl_spread = np.ptp([r["dgl SM eff"] for r in sub])
        assert mega_spread <= dgl_spread + 0.05
