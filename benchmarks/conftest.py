"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark prints the rows/series of its paper counterpart (so the
reproduction can be eyeballed against the PDF) and asserts the *shape*
claims — who wins, in which direction, roughly by how much.  Absolute
numbers come from the simulated GTX 1080, not the authors' testbed.
"""

import numpy as np
import pytest


def print_table(title, rows, columns):
    """Render a list of dicts as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows))
              for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r[c]).ljust(widths[c]) for c in columns))


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@pytest.fixture(scope="session")
def bench_scale():
    """Dataset scale used across benchmarks (keeps epochs tractable)."""
    return 0.02


@pytest.fixture(scope="session", autouse=True)
def _fresh_workload_caches():
    """Start and end the benchmark session with empty workload memos.

    The memos in :mod:`repro.profiling.workload` are FIFO-bounded, but a
    benchmark session should neither inherit entries from an earlier
    in-process run nor leave datasets pinned in memory afterwards.
    """
    from repro.profiling import clear_caches

    clear_caches()
    yield
    clear_caches()


_PROFILE_CACHE = {}

# Scale giving each dataset enough training graphs for the largest batch.
PROFILE_SCALES = {"ZINC": 0.03, "AQSOL": 0.04, "CSL": 3.0, "CYCLES": 0.03}


def cached_profile(dataset, model, method, batch_size=64, hidden_dim=128,
                   num_layers=4):
    """Memoised kernel profile for one configuration."""
    from repro.profiling import profile_configuration

    key = (dataset, model, method, batch_size, hidden_dim, num_layers)
    if key not in _PROFILE_CACHE:
        _PROFILE_CACHE[key] = profile_configuration(
            dataset, model, method, batch_size=batch_size,
            hidden_dim=hidden_dim, num_layers=num_layers,
            scale=PROFILE_SCALES[dataset])
    return _PROFILE_CACHE[key]
