"""Table II — graph statistics of the four datasets.

Paper row format: splits, mean nodes, mean (directed) edges, sparsity.
Generated datasets must land near the published statistics.
"""

import pytest

from benchmarks.conftest import print_table
from repro.datasets import load_dataset
from repro.datasets.statistics import table_two_row

PAPER = {
    "ZINC": {"nodes": 23, "edges": 50, "sparsity": 0.096},
    "AQSOL": {"nodes": 18, "edges": 36, "sparsity": 0.148},
    "CSL": {"nodes": 41, "edges": 164, "sparsity": 0.098},
    "CYCLES": {"nodes": 49, "edges": 88, "sparsity": 0.036},
}


def compute_rows(scale):
    rows = []
    for name in PAPER:
        ds = load_dataset(name, scale=scale if name != "CSL" else 1.0)
        r = table_two_row(ds)
        rows.append({
            "dataset": name, "train": r.train, "val": r.validation,
            "test": r.test, "nodes": r.mean_nodes, "edges": r.mean_edges,
            "sparsity": r.mean_sparsity,
            "paper(n/e/sp)": (f"{PAPER[name]['nodes']}/"
                              f"{PAPER[name]['edges']}/"
                              f"{PAPER[name]['sparsity']}"),
        })
    return rows


def test_table2_dataset_stats(benchmark, bench_scale):
    rows = benchmark.pedantic(compute_rows, args=(bench_scale,),
                              rounds=1, iterations=1)
    print_table("Table II: graph statistics", rows,
                ["dataset", "train", "val", "test", "nodes", "edges",
                 "sparsity", "paper(n/e/sp)"])
    for row in rows:
        paper = PAPER[row["dataset"]]
        assert row["nodes"] == pytest.approx(paper["nodes"], rel=0.15)
        assert row["edges"] == pytest.approx(paper["edges"], rel=0.15)
        assert row["sparsity"] == pytest.approx(paper["sparsity"], rel=0.35)
