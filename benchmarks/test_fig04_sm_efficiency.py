"""Fig. 4 — per-kernel SM efficiency under the DGL baseline.

Paper setting: batch 64, hidden dim 128.  The ``sgemm`` kernel's SM
efficiency "significantly outperforms that of both cub and dgl kernels
by a considerable margin".
"""

import numpy as np
import pytest

from benchmarks import ledger_adapter
from benchmarks.conftest import cached_profile, print_table

DATASETS = ("ZINC", "AQSOL", "CSL", "CYCLES")
KERNELS = ("sgemm", "dgl::scatter", "dgl::gather", "cub::sort")


def compute():
    rows = []
    for dataset in DATASETS:
        for model in ("GCN", "GT"):
            prof = cached_profile(dataset, model, "baseline",
                                  batch_size=64, hidden_dim=128)
            aggs = prof.by_kernel()
            row = {"dataset": dataset, "model": model}
            for kernel in KERNELS:
                row[kernel] = aggs[kernel].sm_efficiency
            rows.append(row)
    return rows


def test_fig04_sm_efficiency(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 4: SM efficiency per kernel (batch 64, dim 128)",
                rows, ["dataset", "model"] + list(KERNELS))
    ledger_adapter.emit_rows(
        "kernels", "fig04_sm_efficiency", rows,
        label_columns=("dataset", "model"),
        config={"batch_size": 64, "hidden_dim": 128,
                "method": "baseline"})
    for row in rows:
        # sgemm beats every graph kernel by a clear margin.
        graph_kernels = [row["dgl::scatter"], row["dgl::gather"],
                         row["cub::sort"]]
        assert row["sgemm"] > 1.5 * max(graph_kernels), row
        assert row["sgemm"] > 0.5
