"""Ablation — edge-dropping strategies (random vs SparseGAT-style).

Compares random DropEdge against importance-guided dropping (degree and
triangle heuristics) at the Fig. 15 rate: all shrink the traversal
workload similarly, but importance-guided drops preserve connectivity
and graph structure (WL similarity) better.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.core.edge_drop import drop_edges, drop_edges_by_importance
from repro.core.isomorphism import wl_similarity
from repro.graph.generators import erdos_renyi
from repro.graph.traversal import connected_components

DROP = 0.3
NUM_GRAPHS = 12


def compute():
    strategies = {
        "random": lambda g, rng: drop_edges(
            g, DROP, rng, keep_connected_floor=False),
        "degree": lambda g, rng: drop_edges_by_importance(
            g, DROP, "degree", rng, keep_connected_floor=False),
        "triangle": lambda g, rng: drop_edges_by_importance(
            g, DROP, "triangle", rng, keep_connected_floor=False),
    }
    stats = {name: {"components": [], "wl": [], "path_len": []}
             for name in strategies}
    for seed in range(NUM_GRAPHS):
        g = erdos_renyi(np.random.default_rng(seed), 40, 0.12)
        for name, dropper in strategies.items():
            dropped = dropper(g, np.random.default_rng(seed + 77))
            stats[name]["components"].append(
                len(connected_components(dropped)))
            stats[name]["wl"].append(wl_similarity(g, dropped, 2)[1])
            rep = PathRepresentation.from_graph(dropped,
                                                MegaConfig(window=2))
            stats[name]["path_len"].append(rep.length)
    rows = []
    for name, data in stats.items():
        rows.append({
            "strategy": name,
            "mean components": float(np.mean(data["components"])),
            "wl sim (1 hop)": float(np.mean(data["wl"])),
            "mean path length": float(np.mean(data["path_len"])),
        })
    return rows


def test_ablation_drop_strategies(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(f"Ablation: dropping strategies at {DROP:.0%}", rows,
                ["strategy", "mean components", "wl sim (1 hop)",
                 "mean path length"])
    by_name = {r["strategy"]: r for r in rows}
    # Importance-guided dropping fragments the graph less than random.
    assert (by_name["degree"]["mean components"]
            <= by_name["random"]["mean components"])
    # All strategies shrink the traversal similarly (within 15%).
    lengths = [r["mean path length"] for r in rows]
    assert max(lengths) < 1.15 * min(lengths)
