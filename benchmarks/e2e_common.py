"""Shared driver for the end-to-end convergence benchmarks (Figs. 11-14)."""

from benchmarks import ledger_adapter
from benchmarks.conftest import print_table
from repro.datasets import load_dataset
from repro.train import run_convergence


def run_e2e(dataset_name, model_name, scale=0.015, hidden_dim=32,
            num_layers=3, batch_size=32, num_epochs=8, lr=3e-3, seed=0,
            csl_scale=1.0):
    """Train one dataset/model pair under both methods; print the curves."""
    loader_scale = csl_scale if dataset_name == "CSL" else scale
    dataset = load_dataset(dataset_name, scale=loader_scale)
    result = run_convergence(dataset, model_name, hidden_dim=hidden_dim,
                             num_layers=num_layers, batch_size=batch_size,
                             num_epochs=num_epochs, lr=lr, seed=seed)
    rows = []
    for base, mega in zip(result.baseline.records, result.mega.records):
        rows.append({
            "epoch": base.epoch,
            "loss": base.train_loss,
            "val metric": base.val_metric,
            "dgl clock (s)": base.sim_time_s,
            "mega clock (s)": mega.sim_time_s,
        })
    print_table(
        f"{dataset_name} + {model_name}: metric vs simulated wall clock",
        rows, ["epoch", "loss", "val metric", "dgl clock (s)",
               "mega clock (s)"])
    print(f"convergence speedup: {result.speedup:.2f}x  "
          f"(final metric: dgl={result.final_metric_baseline:.4f}, "
          f"mega={result.final_metric_mega:.4f})")
    ledger_adapter.emit_rows(
        "train", f"e2e_{dataset_name.lower()}_{model_name.lower()}",
        rows + [{"epoch": "summary", "speedup": result.speedup,
                 "final_metric_baseline": result.final_metric_baseline,
                 "final_metric_mega": result.final_metric_mega}],
        label_columns=("epoch",), seed=seed,
        config={"dataset": dataset_name, "model": model_name,
                "scale": loader_scale, "hidden_dim": hidden_dim,
                "num_layers": num_layers, "batch_size": batch_size,
                "num_epochs": num_epochs})
    return result
