"""§IV-B6 — distributed communication: path partition vs edge cut.

Paper: a partitioned graph needs expensive all-to-all neighbourhood
exchange, while partitioning MEGA's path costs only two communications
per adjacent chunk pair — O(k) total.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.distributed import communication_sweep
from repro.graph.generators import erdos_renyi

KS = (2, 4, 8, 16, 32)


def compute():
    g = erdos_renyi(np.random.default_rng(7), 600, 0.01)
    rep = PathRepresentation.from_graph(g, MegaConfig(window=2))
    return communication_sweep(g, rep, list(KS)), rep


def test_sec4b6_communication(benchmark):
    rows, rep = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Sec. IV-B6: communication, edge-cut vs path partition",
                rows, ["k", "edge_cut_pairs", "edge_cut_volume",
                       "path_pairs", "path_volume"])
    print(f"(path expansion factor: {rep.expansion:.2f})")
    for row in rows:
        # Path partition: exactly k-1 neighbouring pairs — O(k).
        assert row["path_pairs"] == row["k"] - 1
        # And far cheaper volume than the edge-cut exchange.
        assert row["path_volume"] < row["edge_cut_volume"]
    # Edge-cut pair count grows superlinearly towards all-to-all.
    pair_growth = rows[-1]["edge_cut_pairs"] / max(rows[0]["edge_cut_pairs"], 1)
    k_growth = KS[-1] / KS[0]
    assert pair_growth > k_growth
    # Path volume grows linearly in k (slope 2ω rows per boundary).
    vols = [r["path_volume"] for r in rows]
    slopes = np.diff(vols) / np.diff(KS)
    assert np.allclose(slopes, slopes[0], rtol=0.01)
