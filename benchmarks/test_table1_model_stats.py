"""Table I — model configuration statistics.

Paper values: GCN 5d² parameters, 1 scatter / 2 gathers per layer;
GT 14d² parameters, 5 scatters / 2 gathers per layer.
"""

import pytest

from benchmarks.conftest import print_table
from repro.models import table_one

PAPER = {
    "GCN": {"params_d2": 5, "scatter": 1, "gather": 2},
    "GT": {"params_d2": 14, "scatter": 5, "gather": 2},
}


def test_table1_model_stats(benchmark):
    stats = benchmark.pedantic(table_one, rounds=1, iterations=1)
    rows = []
    for name, s in stats.items():
        rows.append({
            "model": name,
            "param volume (d^2/layer)": s.parameter_volume_d2,
            "paper": PAPER[name]["params_d2"],
            "scatter calls": s.scatter_calls_per_layer,
            "gather calls": s.gather_calls_per_layer,
            "total params": s.total_parameters,
        })
    print_table("Table I: model configuration statistics", rows,
                ["model", "param volume (d^2/layer)", "paper",
                 "scatter calls", "gather calls", "total params"])
    for name, s in stats.items():
        assert s.parameter_volume_d2 == pytest.approx(PAPER[name]["params_d2"])
        assert s.scatter_calls_per_layer == PAPER[name]["scatter"]
        assert s.gather_calls_per_layer == PAPER[name]["gather"]
