"""Fig. 10 — epoch runtime and sgemm occupancy across batch sizes.

Paper setting: batch sizes 64/128/256.  Shapes: MEGA has lower epoch
time in every setting with a larger sgemm share; GT gains more than GCN
(more graph operations); the speedup does not keep growing with batch
size on the paper's testbed (see EXPERIMENTS.md for the simulator's
deviation on that trend).
"""

import pytest

from benchmarks.conftest import cached_profile, print_table
from repro.models.kernel_plans import BACKWARD_FACTOR

DATASETS = ("ZINC", "AQSOL", "CSL", "CYCLES")
BATCHES = (64, 128, 256)


def sgemm_share(prof):
    return prof.time_percentages().get("sgemm", 0.0)


def compute():
    rows = []
    for dataset in DATASETS:
        for model in ("GCN", "GT"):
            for batch in BATCHES:
                base = cached_profile(dataset, model, "baseline",
                                      batch_size=batch, hidden_dim=64)
                mega = cached_profile(dataset, model, "mega",
                                      batch_size=batch, hidden_dim=64)
                rows.append({
                    "dataset": dataset, "model": model, "batch": batch,
                    "dgl ms": base.total_time * BACKWARD_FACTOR * 1e3,
                    "mega ms": mega.total_time * BACKWARD_FACTOR * 1e3,
                    "speedup": base.total_time / mega.total_time,
                    "dgl sgemm%": sgemm_share(base),
                    "mega sgemm%": sgemm_share(mega),
                })
    return rows


def test_fig10_runtime(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 10: per-batch training time and sgemm share (dim 64)",
                rows, ["dataset", "model", "batch", "dgl ms", "mega ms",
                       "speedup", "dgl sgemm%", "mega sgemm%"])
    for row in rows:
        # MEGA is faster and more sgemm-dominated in every setting.
        assert row["speedup"] > 1.0, row
        assert row["mega sgemm%"] > row["dgl sgemm%"], row
    # GT benefits at least as much as GCN on average (more graph ops).
    def mean_speedup(model):
        vals = [r["speedup"] for r in rows if r["model"] == model]
        return sum(vals) / len(vals)

    assert mean_speedup("GT") > 0.85 * mean_speedup("GCN")
    # Speedups land in the paper's reported band (roughly 1.3x - 3x).
    speedups = [r["speedup"] for r in rows]
    assert min(speedups) > 1.1
    assert max(speedups) < 5.0
