"""Ablation — device sensitivity of MEGA's speedup.

The paper evaluates on one GPU (GTX 1080).  Replaying the same kernel
plans on differently provisioned simulated devices asks how much of the
win is device-specific.  Finding: the advantage *grows* with device
capability — on a weak, bandwidth-starved part even sequential streams
saturate DRAM, compressing the ratio, whereas modern parts (whose
compute and bandwidth grew much faster than their latency and atomic
costs shrank) punish irregular access relatively more.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation
from repro.datasets import load_dataset
from repro.graph.batch import GraphBatch
from repro.memsim import DEVICE_PRESETS, GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime


def compute():
    ds = load_dataset("ZINC", scale=0.015)
    graphs = ds.train[:64]
    batch = GraphBatch(graphs)
    paths = [PathRepresentation.from_graph(g, MegaConfig())
             for g in graphs]
    rows = []
    for name, spec in DEVICE_PRESETS.items():
        base = simulate_batch("GT", BaselineRuntime(batch),
                              GPUDevice(spec), 128, 4)
        mega = simulate_batch("GT", MegaRuntime(batch, paths),
                              GPUDevice(spec), 128, 4)
        rows.append({
            "device": spec.name,
            "l2 MB": spec.l2_bytes / 2 ** 20,
            "bw GB/s": spec.dram_bandwidth_gbs,
            "dgl ms": base.total_time * 1e3,
            "mega ms": mega.total_time * 1e3,
            "speedup": base.total_time / mega.total_time,
        })
    return rows


def test_ablation_device(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: device sensitivity (ZINC, GT, batch 64, dim 128)",
                rows, ["device", "l2 MB", "bw GB/s", "dgl ms", "mega ms",
                       "speedup"])
    by_name = {r["device"]: r for r in rows}
    # MEGA wins on every device class.
    for row in rows:
        assert row["speedup"] > 1.0, row
    # The advantage grows with device capability (see module docstring):
    # bandwidth-starved parts compress the ratio, big parts amplify it.
    assert (by_name["A100-sim"]["speedup"]
            > by_name["GTX1080-sim"]["speedup"]
            > by_name["mobile-sim"]["speedup"])
