"""Fig. 15 — AQSOL with 20% edge dropping (paper: ≈5.9x, same accuracy).

MEGA trains on the edge-dropped graphs (shorter paths, fewer revisits),
while the baseline trains on the full graphs.  The speedup must clearly
exceed the no-dropping case and the final metric must stay comparable.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.config import MegaConfig
from repro.core.edge_drop import drop_edges
from repro.datasets import load_dataset
from repro.datasets.base import GraphDataset
from repro.train import Trainer, build_model, run_convergence
from repro.train.metrics import speedup_to_loss_target

SCALE = 0.015
DROP = 0.2


def dropped_copy(ds, fraction, seed=0):
    """DropEdge applies at training time only: validation and test keep
    their full graphs so accuracy is measured on intact inputs."""
    rng = np.random.default_rng(seed)
    return GraphDataset(name=ds.name, task=ds.task,
                        train=[drop_edges(g, fraction, rng)
                               for g in ds.train],
                        validation=ds.validation,
                        test=ds.test,
                        num_node_types=ds.num_node_types,
                        num_edge_types=ds.num_edge_types,
                        num_classes=ds.num_classes)


def run_experiment():
    dataset = load_dataset("AQSOL", scale=SCALE)
    dropped = dropped_copy(dataset, DROP)

    # Baseline: DGL on the full graphs.
    base_model = build_model("GT", dataset, hidden_dim=32, num_layers=3)
    base_trainer = Trainer(base_model, dataset, method="baseline",
                           batch_size=32, lr=3e-3)
    base_history = base_trainer.fit(14)

    # MEGA without dropping (the Fig. 11 configuration, for reference).
    plain_mega = Trainer(build_model("GT", dataset, hidden_dim=32,
                                     num_layers=3),
                         dataset, method="mega", batch_size=32, lr=3e-3)

    # MEGA with 20% DropEdge.
    drop_model = build_model("GT", dropped, hidden_dim=32, num_layers=3)
    drop_trainer = Trainer(drop_model, dropped, method="mega",
                           batch_size=32, lr=3e-3)
    drop_history = drop_trainer.fit(14)

    speedup_drop = speedup_to_loss_target(drop_history, base_history)
    epoch_base = base_trainer._epoch_cost_seconds("train")
    epoch_plain = plain_mega._epoch_cost_seconds("train")
    epoch_drop = drop_trainer._epoch_cost_seconds("train")
    return {
        "base_history": base_history,
        "drop_history": drop_history,
        "speedup_drop": speedup_drop,
        "epoch_base": epoch_base,
        "epoch_plain_mega": epoch_plain,
        "epoch_drop_mega": epoch_drop,
    }


def test_fig15_edge_dropping(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        {"setting": "DGL (full graph)", "epoch s": out["epoch_base"],
         "speedup": 1.0},
        {"setting": "MEGA", "epoch s": out["epoch_plain_mega"],
         "speedup": out["epoch_base"] / out["epoch_plain_mega"]},
        {"setting": "MEGA + 20% drop", "epoch s": out["epoch_drop_mega"],
         "speedup": out["epoch_base"] / out["epoch_drop_mega"]},
    ]
    print_table("Fig. 15: AQSOL with edge dropping", rows,
                ["setting", "epoch s", "speedup"])
    print(f"convergence speedup (MEGA+drop vs DGL): "
          f"{out['speedup_drop']:.2f}x; final metric "
          f"dgl={out['base_history'].records[-1].val_metric:.4f} "
          f"mega+drop={out['drop_history'].records[-1].val_metric:.4f}")
    # Dropping amplifies the epoch-time advantage beyond plain MEGA.
    assert out["epoch_drop_mega"] < out["epoch_plain_mega"]
    assert (out["epoch_base"] / out["epoch_drop_mega"]
            > out["epoch_base"] / out["epoch_plain_mega"])
    # Accuracy stays comparable despite the missing edges.
    final_base = out["base_history"].records[-1].val_metric
    final_drop = out["drop_history"].records[-1].val_metric
    assert final_drop < 1.6 * final_base  # MAE within 60%
    # Convergence speedup clearly above 1 (paper: 5.9x on its testbed).
    assert out["speedup_drop"] > 1.3
