"""Ablation — topology spectrum (the paper's §IV-B7 limitation).

"Real-world graph topologies span a spectrum, [the] traversal algorithm
necessitates meticulous calibration to accommodate diverse graph
characteristics."  This sweep runs the same pipeline over five graph
families at matched size and reports the quantities that govern MEGA's
profitability: path expansion, band fill, and the simulated speedup.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import MegaConfig, PathRepresentation, make_dense_band_plan
from repro.graph.batch import GraphBatch
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    stochastic_block_model,
    watts_strogatz,
)
from repro.memsim import GPUDevice
from repro.models.kernel_plans import simulate_batch
from repro.models.runtime import BaselineRuntime, MegaRuntime

N = 96


def families(rng):
    return {
        "erdos-renyi": erdos_renyi(rng, N, 4.2 / N),
        "power-law": barabasi_albert(rng, N, 2),
        "small-world": watts_strogatz(rng, N, k=4, rewire_p=0.15),
        "community": stochastic_block_model(
            rng, [N // 4] * 4, 0.17, 0.005),
        "grid": grid_graph(8, 12),
    }


def compute():
    rng = np.random.default_rng(17)
    rows = []
    for name, g in families(rng).items():
        g.label = 0.0
        g.node_features = np.zeros(g.num_nodes, dtype=np.int64)
        g.edge_features = np.zeros(g.num_edges, dtype=np.int64)
        rep = PathRepresentation.from_graph(g, MegaConfig())
        dense = make_dense_band_plan(rep)
        graphs = [g] * 16   # batch of identical topology
        batch = GraphBatch(graphs)
        paths = [rep] * 16
        base = simulate_batch("GT", BaselineRuntime(batch),
                              GPUDevice(), 64, 3)
        mega = simulate_batch("GT", MegaRuntime(batch, paths),
                              GPUDevice(), 64, 3)
        rows.append({
            "family": name,
            "mean deg": float(g.degrees().mean()),
            "window": rep.window,
            "expansion": rep.expansion,
            "band fill": dense.fill_ratio,
            "speedup": base.total_time / mega.total_time,
        })
    return rows


def test_ablation_topology(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(f"Ablation: topology spectrum (n={N}, GT, dim 64)", rows,
                ["family", "mean deg", "window", "expansion", "band fill",
                 "speedup"])
    for row in rows:
        # Coverage-complete schedules win on every family ...
        assert row["speedup"] > 1.0, row
        # ... at bounded memory overhead.
        assert row["expansion"] < 3.5, row
    # Grid/lattice topologies are the friendliest (near-Hamiltonian
    # paths); the sweep documents the spread the paper's limitation
    # section warns about.
    by_family = {r["family"]: r for r in rows}
    assert by_family["grid"]["expansion"] <= min(
        r["expansion"] for r in rows) + 0.3
